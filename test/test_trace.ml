(* st_trace: ring-buffer semantics (wraparound keeps the newest window and
   counts drops), span-tree folding (nesting, orphan ends, unclosed spans),
   the Chrome trace-event serialization (pinned golden + roundtrip), the
   binary capture roundtrip, and deterministic state-heat top-N from the
   instrumented engine. Tests restore tracer state: everything here runs
   in the same process as the rest of the suite. *)

open Streamtok
module T = Trace

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Synthetic events, oldest first. *)
let ev ?(cat = "misc") ?(arg = 0) ?(tid = 0) kind name ts_ns =
  { T.Ev.name; cat; kind; ts_ns; arg; tid }

let with_tracer ~capacity f =
  T.set_enabled false;
  T.configure ~capacity_events:capacity;
  T.reset ();
  Fun.protect
    ~finally:(fun () ->
      T.set_enabled false;
      T.configure ~capacity_events:65536;
      T.reset ())
    f

(* ---- ring buffer ---- *)

let test_ring_wraparound () =
  (* 16 is the smallest ring configure allows *)
  with_tracer ~capacity:16 (fun () ->
      let p = T.probe ~cat:"test" "ring.ctr" in
      T.set_enabled true;
      for i = 0 to 19 do
        T.counter p i
      done;
      T.set_enabled false;
      let evs = T.events () in
      check_int "ring keeps capacity" 16 (List.length evs);
      check_int "drop counter" 4 (T.dropped ());
      (* the survivors are the newest window, still oldest-first *)
      check "newest window" true
        (List.map (fun e -> e.T.Ev.arg) evs = List.init 16 (fun i -> i + 4));
      List.iter
        (fun e ->
          check_str "name" "ring.ctr" e.T.Ev.name;
          check_str "cat" "test" e.T.Ev.cat;
          check "kind" true (e.T.Ev.kind = T.Ev.Counter))
        evs;
      T.reset ();
      check_int "reset clears events" 0 (List.length (T.events ()));
      check_int "reset clears drops" 0 (T.dropped ()))

let test_disabled_emits_nothing () =
  with_tracer ~capacity:16 (fun () ->
      let p = T.probe ~cat:"test" "ring.off" in
      check "disabled" false (T.enabled ());
      T.begin_span p;
      T.instant p;
      T.counter p 3;
      T.end_span p;
      check_int "no events recorded" 0 (List.length (T.events ())))

let test_with_span_exception () =
  with_tracer ~capacity:16 (fun () ->
      let p = T.probe ~cat:"test" "ring.exn" in
      T.set_enabled true;
      (try T.with_span p (fun () -> failwith "boom") with Failure _ -> ());
      T.set_enabled false;
      match T.events () with
      | [ b; e ] ->
          check "begin" true (b.T.Ev.kind = T.Ev.Begin);
          check "end emitted on exception" true (e.T.Ev.kind = T.Ev.End)
      | l -> Alcotest.failf "expected 2 events, got %d" (List.length l))

(* ---- span-tree report ---- *)

let test_report_nesting () =
  let r =
    T.Report.build
      [
        ev ~cat:"a" T.Ev.Begin "outer" 1_000;
        ev ~cat:"b" T.Ev.Begin "inner" 2_000;
        ev ~cat:"b" T.Ev.End "inner" 3_000;
        ev ~cat:"a" T.Ev.End "outer" 5_000;
      ]
  in
  check_int "wall" 4_000 r.T.Report.wall_ns;
  check_int "attributed = root total" 4_000 r.T.Report.attributed_ns;
  (match r.T.Report.roots with
  | [ o ] ->
      check_str "root" "outer" o.T.Report.name;
      check_int "outer total" 4_000 o.T.Report.total_ns;
      check_int "outer self" 3_000 o.T.Report.self_ns;
      check_int "outer count" 1 o.T.Report.count;
      (match o.T.Report.children with
      | [ i ] ->
          check_str "child" "inner" i.T.Report.name;
          check_int "inner total" 1_000 i.T.Report.total_ns
      | _ -> Alcotest.fail "expected one child")
  | _ -> Alcotest.fail "expected one root");
  check "by_cat self times" true
    (List.sort compare r.T.Report.by_cat
    = [ ("a", 3_000); ("b", 1_000) ]);
  check "attribution pct" true (abs_float (T.Report.attribution_pct r -. 100.) < 1e-9)

let test_report_orphan_end () =
  (* an end with no matching open span is ignored *)
  let r =
    T.Report.build
      [
        ev T.Ev.End "ghost" 100;
        ev T.Ev.Begin "a" 200;
        ev T.Ev.End "a" 300;
        ev T.Ev.End "ghost" 400;
      ]
  in
  (match r.T.Report.roots with
  | [ a ] ->
      check_str "only real span survives" "a" a.T.Report.name;
      check_int "total" 100 a.T.Report.total_ns
  | l -> Alcotest.failf "expected one root, got %d" (List.length l));
  check_int "attributed ignores orphans" 100 r.T.Report.attributed_ns

let test_report_mismatched_end_unwinds () =
  (* ending "outer" while "inner" is still open closes both at that ts *)
  let r =
    T.Report.build
      [
        ev T.Ev.Begin "outer" 100;
        ev T.Ev.Begin "inner" 200;
        ev T.Ev.End "outer" 400;
      ]
  in
  match r.T.Report.roots with
  | [ o ] ->
      check_int "outer total" 300 o.T.Report.total_ns;
      (match o.T.Report.children with
      | [ i ] -> check_int "inner closed at outer end" 200 i.T.Report.total_ns
      | _ -> Alcotest.fail "expected inner child")
  | _ -> Alcotest.fail "expected one root"

let test_report_unclosed_span () =
  (* spans still open at the end of the stream close at the last ts *)
  let r =
    T.Report.build
      [ ev T.Ev.Begin "a" 100; ev T.Ev.Instant "mark" 700 ]
  in
  (match r.T.Report.roots with
  | [ a ] -> check_int "closed at last ts" 600 a.T.Report.total_ns
  | _ -> Alcotest.fail "expected one root");
  (* instants/counters aggregate into the counters list *)
  check "instant counted" true
    (List.exists
       (fun (n, count, _) -> n = "mark" && count = 1)
       r.T.Report.counters)

let test_report_threads_merge () =
  (* identical paths from two threads merge into one node *)
  let r =
    T.Report.build
      [
        ev ~tid:0 T.Ev.Begin "work" 0;
        ev ~tid:1 T.Ev.Begin "work" 100;
        ev ~tid:0 T.Ev.End "work" 1_000;
        ev ~tid:1 T.Ev.End "work" 1_100;
      ]
  in
  check_int "threads" 2 r.T.Report.threads;
  match r.T.Report.roots with
  | [ w ] ->
      check_int "merged count" 2 w.T.Report.count;
      check_int "summed total" 2_000 w.T.Report.total_ns
  | _ -> Alcotest.fail "expected one merged root"

(* ---- Chrome trace-event JSON ---- *)

let golden_events =
  [
    ev ~cat:"engine" T.Ev.Begin "engine.run" 1_000;
    ev ~cat:"engine" T.Ev.End "engine.run" 4_500;
    ev ~cat:"session" ~tid:1 T.Ev.Instant "cache.hit" 5_000;
    ev ~cat:"io" ~arg:42 T.Ev.Counter "queue.depth" 6_250;
  ]

let test_chrome_golden () =
  (* Pinned serialization: timestamps are microseconds relative to the
     first event; B/E/i/C phases; instants get scope "t", counters their
     value under args. *)
  let expected =
    "{\"displayTimeUnit\":\"ns\",\"traceEvents\":["
    ^ "{\"name\":\"engine.run\",\"cat\":\"engine\",\"ph\":\"B\",\"ts\":0,\"pid\":0,\"tid\":0},"
    ^ "{\"name\":\"engine.run\",\"cat\":\"engine\",\"ph\":\"E\",\"ts\":3.5,\"pid\":0,\"tid\":0},"
    ^ "{\"name\":\"cache.hit\",\"cat\":\"session\",\"ph\":\"i\",\"ts\":4,\"pid\":0,\"tid\":1,\"s\":\"t\"},"
    ^ "{\"name\":\"queue.depth\",\"cat\":\"io\",\"ph\":\"C\",\"ts\":5.25,\"pid\":0,\"tid\":0,\"args\":{\"value\":42}}"
    ^ "]}"
  in
  check_str "golden" expected (T.Chrome.to_string golden_events)

let test_chrome_roundtrip () =
  let heat =
    [
      {
        T.Heat.label = "json";
        states = 2;
        bytes = 1_000;
        rows =
          [
            { T.Heat.state = 1; visits = 900; skipped = 50; stop_bytes = 12; rule = 0; accel = true };
            { T.Heat.state = 0; visits = 100; skipped = 0; stop_bytes = 0; rule = -1; accel = false };
          ];
      };
    ]
  in
  let s = T.Chrome.to_string ~heat golden_events in
  match T.Chrome.of_string s with
  | Error msg -> Alcotest.failf "chrome parse: %s" msg
  | Ok (evs, heat') ->
      (* relative µs timestamps survive as relative ns *)
      let rel = List.map (fun e -> { e with T.Ev.ts_ns = e.T.Ev.ts_ns - 1_000 }) golden_events in
      check "events roundtrip" true (evs = rel);
      check "heat roundtrips" true (heat' = heat)

let test_chrome_parse_errors () =
  check "garbage rejected" true (Result.is_error (T.Chrome.of_string "nope"));
  check "non-object rejected" true (Result.is_error (T.Chrome.of_string "[1,2]"))

(* ---- binary capture ---- *)

let test_bin_roundtrip () =
  let heat =
    [
      {
        T.Heat.label = "words";
        states = 1;
        bytes = 64;
        rows = [ { T.Heat.state = 0; visits = 64; skipped = 0; stop_bytes = 3; rule = 1; accel = true } ];
      };
    ]
  in
  let s = T.Bin.to_string ~heat golden_events in
  check "magic sniff" true (T.Bin.is_binary s);
  check "json is not binary" false (T.Bin.is_binary (T.Chrome.to_string golden_events));
  match T.Bin.of_string s with
  | Error msg -> Alcotest.failf "bin parse: %s" msg
  | Ok (evs, heat') ->
      check "events roundtrip exactly" true (evs = golden_events);
      check "heat roundtrips" true (heat' = heat)

let test_bin_truncated () =
  let s = T.Bin.to_string golden_events in
  check "truncation detected" true
    (Result.is_error (T.Bin.of_string (String.sub s 0 (String.length s - 3))))

(* ---- state heat ---- *)

let words_engine () =
  match
    Engine.compile_rules (Parser.parse_grammar "[a-z][a-z]*\n[ ][ ]*")
  with
  | Ok e -> e
  | Error _ -> assert false

let words_input () =
  let rng = Prng.create 0x7EA7L in
  let b = Buffer.create 65536 in
  while Buffer.length b < 65536 do
    for _ = 1 to 2 + Prng.int rng 10 do
      Buffer.add_char b (Char.chr (Char.code 'a' + Prng.int rng 26))
    done;
    Buffer.add_char b ' '
  done;
  Buffer.contents b

let heat_of_run e input =
  let stats = Run_stats.create () in
  Run_stats.enable_state_heat stats ~states:(Dfa.size (Engine.dfa e));
  ignore
    (Engine.run_string_instrumented e input ~stats
       ~emit:(fun ~pos:_ ~len:_ ~rule:_ -> ()));
  Engine.heat_table ~label:"words" e stats

let test_heat_topn_deterministic () =
  let e = words_engine () in
  let input = words_input () in
  let t1 = heat_of_run e input and t2 = heat_of_run e input in
  check "identical tables across runs" true (t1 = t2);
  let top = T.Heat.top ~n:3 t1 in
  check "top returns rows" true (List.length top > 0);
  (* counts account for the whole input: visits + skipped = bytes *)
  let consumed =
    List.fold_left (fun a r -> a + r.T.Heat.visits + r.T.Heat.skipped) 0 t1.T.Heat.rows
  in
  check_int "every byte counted once" (String.length input) consumed;
  (* ordering: descending by visits + skipped, ties by state id *)
  let keys = List.map (fun r -> (-(r.T.Heat.visits + r.T.Heat.skipped), r.T.Heat.state)) top in
  check "sorted" true (keys = List.sort compare keys);
  (* the word-body state dominates and is accelerable *)
  match top with
  | hot :: _ ->
      check "hottest state is hot" true (hot.T.Heat.visits + hot.T.Heat.skipped > 30_000);
      check "hottest state accelerable" true hot.T.Heat.accel;
      check "stop bytes: everything but a-z" true (hot.T.Heat.stop_bytes = 256 - 26)
  | [] -> Alcotest.fail "empty top"

let test_heat_instrumented_parity () =
  (* heat counting must not perturb the token stream *)
  let e = words_engine () in
  let input = words_input () in
  let toks run =
    let acc = ref [] in
    ignore (run ~emit:(fun ~pos ~len ~rule -> acc := (pos, len, rule) :: !acc));
    List.rev !acc
  in
  let plain = toks (fun ~emit -> Engine.run_string e input ~emit) in
  let heat =
    toks (fun ~emit ->
        let stats = Run_stats.create () in
        Run_stats.enable_state_heat stats ~states:(Dfa.size (Engine.dfa e));
        Engine.run_string_instrumented e input ~stats ~emit)
  in
  check "token streams identical" true (plain = heat)

let test_heat_json_roundtrip () =
  let t = heat_of_run (words_engine ()) (words_input ()) in
  match T.Heat.of_json (T.Heat.to_json t) with
  | Ok t' -> check "heat json roundtrip" true (t = t')
  | Error msg -> Alcotest.failf "heat json: %s" msg

let suite =
  [
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "disabled tracer emits nothing" `Quick
      test_disabled_emits_nothing;
    Alcotest.test_case "with_span on exception" `Quick test_with_span_exception;
    Alcotest.test_case "report nesting" `Quick test_report_nesting;
    Alcotest.test_case "report orphan end" `Quick test_report_orphan_end;
    Alcotest.test_case "report mismatched end unwinds" `Quick
      test_report_mismatched_end_unwinds;
    Alcotest.test_case "report unclosed span" `Quick test_report_unclosed_span;
    Alcotest.test_case "report merges threads" `Quick test_report_threads_merge;
    Alcotest.test_case "chrome golden" `Quick test_chrome_golden;
    Alcotest.test_case "chrome roundtrip" `Quick test_chrome_roundtrip;
    Alcotest.test_case "chrome parse errors" `Quick test_chrome_parse_errors;
    Alcotest.test_case "bin roundtrip" `Quick test_bin_roundtrip;
    Alcotest.test_case "bin truncated" `Quick test_bin_truncated;
    Alcotest.test_case "heat top-N deterministic" `Quick
      test_heat_topn_deterministic;
    Alcotest.test_case "heat parity" `Quick test_heat_instrumented_parity;
    Alcotest.test_case "heat json roundtrip" `Quick test_heat_json_roundtrip;
  ]
