(* Thin shim: the generators grew into the fuzzing subsystem
   ([lib/fuzz]); this keeps the historical [Gen.*] names used throughout
   the differential suites. New tests should use [Streamtok.Fuzz.Qgen]
   (qcheck wrappers) or [Streamtok.Fuzz.Gen] (seeded) directly. *)

include Streamtok.Fuzz.Qgen
