(* The SWAR skip-loop tier: build-time classification of <=3-stop-byte
   states, the word-level zero-byte detector against a naive byte-at-a-time
   oracle (every stop-set size x scan offset x stop lane, including the
   absent case), the scalar tails (ranges shorter than a word, exact
   multiples of 8, a stop inside the final partial word), the endianness
   invariance of the broadcast-mask trick (0x00 and 0x80 at every lane),
   and a seeded random battery pitting the SWAR scanners against the bitmap
   scanners and a reference linear scan on every golden grammar. *)

open Streamtok

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let golden_grammars = Formats.all @ Languages.all

(* ---- synthetic single-state tables ---- *)

let stops_of bytes =
  let stops = Array.make 8 0 in
  List.iter
    (fun b -> stops.(b lsr 5) <- stops.(b lsr 5) lor (1 lsl (b land 31)))
    bytes;
  stops

let tables_of bytes =
  let stops = stops_of bytes in
  let kinds, masks = Dfa.swar_classify ~num_states:1 ~stops in
  (stops, kinds, masks)

let tbl_of bytes = Dfa.swar_byte_table ~num_states:1 ~stops:(stops_of bytes)

(* reference: one byte at a time, no words, no bitmaps *)
let linear_scan stop_bytes s pos limit =
  let i = ref pos in
  while !i < limit && not (List.mem (Char.code s.[!i]) stop_bytes) do
    incr i
  done;
  !i

(* every scanner must agree with the reference on (set, s, pos, limit) *)
let agree ~what set (stops, kinds, masks) s pos limit =
  let expected = linear_scan set s pos limit in
  check_int (what ^ ": swar") expected (Dfa.skip_run stops kinds masks 0 s pos limit);
  check_int (what ^ ": bitmap") expected (Dfa.skip_run_bitmap stops 0 s pos limit);
  expected

(* ---- classification ---- *)

let test_classify () =
  let kind bytes =
    let _, kinds, _ = tables_of bytes in
    Char.code (Bytes.get kinds 0)
  in
  check_int "0 stops -> free-running" 4 (kind []);
  check_int "1 stop -> kind 1" 1 (kind [ 0x22 ]);
  check_int "2 stops -> kind 2" 2 (kind [ 0x22; 0x5c ]);
  check_int "3 stops -> kind 3" 3 (kind [ 0x0a; 0x22; 0x5c ]);
  check_int "4 stops -> bitmap" 0 (kind [ 0x0a; 0x0d; 0x22; 0x5c ]);
  (* mask padding repeats the last real stop byte *)
  let _, _, masks = tables_of [ 0x22; 0x5c ] in
  check "kind-2 masks padded" true
    (masks.(1) = masks.(2) && masks.(0) <> masks.(1));
  let _, _, masks = tables_of [ 0x2f ] in
  check "kind-1 masks padded" true (masks.(0) = masks.(1) && masks.(1) = masks.(2));
  check "broadcast mask shape" true
    (masks.(0) = Int64.mul 0x0101010101010101L 0x2fL);
  (* a free-running state reports limit without reading anything *)
  let t = tables_of [] in
  let stops, kinds, masks = t in
  check_int "free-running returns limit" 40
    (Dfa.skip_run stops kinds masks 0 (String.make 40 'a') 3 40)

(* ---- word-level oracle ---- *)

(* stop-set sizes 1..3, scan start offsets 0..7 (every word phase), the
   stop byte at every distance 0..24 from the start (every lane of the
   first three words) and absent entirely, for every member of the set *)
let test_word_oracle () =
  let sets = [ [ 0x78 ]; [ 0x78; 0x7a ]; [ 0x78; 0x7a; 0x7e ] ] in
  List.iter
    (fun set ->
      let t = tables_of set in
      List.iter
        (fun stop ->
          for start = 0 to 7 do
            for d = 0 to 25 do
              let n = start + 25 in
              let b = Bytes.make n 'a' in
              let stop_pos = start + d in
              if stop_pos < n then Bytes.set b stop_pos (Char.chr stop);
              let s = Bytes.to_string b in
              let got =
                agree
                  ~what:
                    (Printf.sprintf "set %d stop %#x start %d dist %d"
                       (List.length set) stop start d)
                  set t s start n
              in
              check_int "oracle position" (min stop_pos n) got
            done
          done)
        set)
    sets

(* ---- tails ---- *)

let test_tails () =
  let set = [ Char.code 'x' ] in
  let t = tables_of set in
  (* ranges shorter than one word never enter the word loop *)
  for n = 0 to 7 do
    ignore (agree ~what:"short clean" set t (String.make n 'a') 0 n);
    for j = 0 to n - 1 do
      let b = Bytes.make n 'a' in
      Bytes.set b j 'x';
      ignore (agree ~what:"short hit" set t (Bytes.to_string b) 0 n)
    done
  done;
  (* clean ranges of exactly 8, 16, 24, 32 bytes: no scalar tail at all *)
  for w = 1 to 4 do
    let n = 8 * w in
    check_int "exact multiple of 8" n
      (agree ~what:"exact words" set t (String.make n 'a') 0 n)
  done;
  (* a stop byte inside the final partial word is found by the tail *)
  for tail = 1 to 7 do
    for j = 0 to tail - 1 do
      let n = 16 + tail in
      let b = Bytes.make n 'a' in
      Bytes.set b (16 + j) 'x';
      check_int "stop in partial word" (16 + j)
        (agree ~what:"partial tail" set t (Bytes.to_string b) 0 n)
    done
  done;
  (* the limit clamps the word loop even when stops lie beyond it *)
  let s = String.make 20 'a' ^ "x" in
  check_int "limit clamps" 20 (agree ~what:"clamped" set t s 0 20)

(* ---- endianness: 0x00 and 0x80 at every lane ---- *)

(* The detector word is built with xor/sub/land on a byte-broadcast mask:
   its answer ("some lane holds the stop byte") is invariant under the
   byte order [get64u] happens to read, and the exact index always comes
   from the scalar bitmap loop. 0x00 (the zero-byte detector's native
   case) and 0x80 (the sign-bit lane) are the two values that would break
   first if the detector had false positives or lane-order assumptions. *)
let test_lane_endianness () =
  List.iter
    (fun stop ->
      let set = [ stop ] in
      let t = tables_of set in
      for lane = 0 to 15 do
        let b = Bytes.make 24 'a' in
        Bytes.set b lane (Char.chr stop);
        check_int
          (Printf.sprintf "stop %#x at lane %d" stop lane)
          lane
          (agree ~what:"lane" set t (Bytes.to_string b) 0 24)
      done;
      (* neighbours of the stop value in every lane: no false positives *)
      List.iter
        (fun filler ->
          if filler <> stop then begin
            let s = String.make 32 (Char.chr filler) in
            check_int
              (Printf.sprintf "stop %#x over %#x runs clean" stop filler)
              32
              (agree ~what:"clean lanes" set t s 0 32)
          end)
        [ 0x00; 0x01; 0x7f; 0x80; 0x81; 0xff ])
    [ 0x00; 0x80 ];
  (* both extremes in the same word, both orders *)
  let set = [ 0x00; 0x80 ] in
  let t = tables_of set in
  let b = Bytes.make 16 'a' in
  Bytes.set b 5 '\x00';
  Bytes.set b 9 '\x80';
  check_int "0x00 before 0x80" 5 (agree ~what:"both" set t (Bytes.to_string b) 0 16);
  let b = Bytes.make 16 'a' in
  Bytes.set b 3 '\x80';
  Bytes.set b 12 '\x00';
  check_int "0x80 before 0x00" 3 (agree ~what:"both" set t (Bytes.to_string b) 0 16)

(* ---- dual-cursor scanner against a two-sided reference ---- *)

let linear_scan2 set_a set_b ~off s pos limit =
  let i = ref pos in
  while
    !i < limit
    && (not (List.mem (Char.code s.[!i]) set_a))
    && not (List.mem (Char.code s.[!i + off]) set_b)
  do
    incr i
  done;
  !i

let test_dual_oracle () =
  let rng = Prng.create 0xD0A1L in
  (* the 4- and 5-member sets classify as bitmap (kind 0), so random pairs
     also cover the merged mixed loops (SWAR x gather-table) both ways and
     the doubly-bitmap fallback *)
  let sets =
    [|
      [ 0x78 ];
      [ 0x78; 0x7a ];
      [ 0x78; 0x7a; 0x7e ];
      [];
      [ 0x78; 0x7a; 0x7e; 0x62 ];
      [ 0x7a; 0x7e; 0x62; 0x41; 0x25 ];
    |]
  in
  for _ = 1 to 500 do
    let set_a = Prng.choose rng sets and set_b = Prng.choose rng sets in
    let stops_a, kinds_a, masks_a = tables_of set_a in
    let stops_b, kinds_b, masks_b = tables_of set_b in
    let tbl_a = tbl_of set_a and tbl_b = tbl_of set_b in
    let off = Prng.in_range rng (-6) 6 in
    let n = Prng.in_range rng 0 64 in
    let b = Bytes.make (n + 16) 'a' in
    for _ = 0 to Prng.int rng 6 do
      Bytes.set b
        (Prng.int rng (n + 16))
        (Prng.choose rng [| 'x'; 'z'; '~'; 'b'; 'A'; '%' |])
    done;
    let s = Bytes.to_string b in
    let pos = max 0 (-off) in
    let limit = min (pos + n) (String.length s - max 0 off) in
    let limit = max pos limit in
    let expected = linear_scan2 set_a set_b ~off s pos limit in
    check_int "dual swar vs reference" expected
      (Dfa.skip_run2 stops_a kinds_a masks_a tbl_a 0 stops_b kinds_b masks_b
         tbl_b 0 ~off s pos limit);
    if set_a <> [] && set_b <> [] then
      check_int "dual bitmap vs reference" expected
        (Dfa.skip_run2_bitmap stops_a 0 stops_b 0 ~off s pos limit)
  done

(* ---- seeded random battery on the golden grammars ---- *)

(* 1000 seeded trials: a random accelerated state of a random golden
   grammar, a random slice of a run-biased string, three scanners in
   lockstep. The real tables (not synthetic ones) are what the hot loops
   consume, so this also checks classification against the grammars'
   actual stop sets. *)
let test_random_battery () =
  let rng = Prng.create 0x5AA5_BEEFL in
  let pool =
    List.filter_map
      (fun g ->
        let d = Grammar.dfa g in
        let flagged = ref [] in
        for q = Dfa.size d - 1 downto 0 do
          if Dfa.is_accel_state d q then flagged := q :: !flagged
        done;
        if !flagged = [] then None else Some (g.Grammar.name, d, Array.of_list !flagged))
      golden_grammars
  in
  check "every golden grammar has accelerable states" true
    (List.length pool = List.length golden_grammars);
  check "some golden grammar has a SWAR state" true
    (List.exists (fun (_, d, _) -> Dfa.accel_swar_state_count d > 0) pool);
  let pool = Array.of_list pool in
  for _ = 1 to 1000 do
    let name, d, flagged = Prng.choose rng pool in
    let q = Prng.choose rng flagged in
    (* self-loop bytes of q, to build long runs; all bytes, for stops *)
    let loopers = ref [] in
    for b = 255 downto 0 do
      if not (Dfa.accel_stop_byte d q b) then loopers := Char.chr b :: !loopers
    done;
    let loopers = Array.of_list !loopers in
    let n = Prng.in_range rng 0 96 in
    let b = Bytes.init n (fun _ -> Prng.choose rng loopers) in
    for _ = 0 to Prng.int rng 4 do
      if n > 0 then
        Bytes.set b (Prng.int rng n) (Char.chr (Prng.int rng 256))
    done;
    let s = Bytes.to_string b in
    let pos = Prng.int rng (n + 1) in
    let limit = Prng.in_range rng pos n in
    let set = ref [] in
    for byte = 255 downto 0 do
      if Dfa.accel_stop_byte d q byte then set := byte :: !set
    done;
    let expected = linear_scan !set s pos limit in
    let what = Printf.sprintf "%s state %d" name q in
    check_int (what ^ ": swar path") expected
      (Dfa.skip_run d.Dfa.accel_stops d.Dfa.accel_kind d.Dfa.accel_swar q s
         pos limit);
    check_int (what ^ ": bitmap path") expected
      (Dfa.skip_run_bitmap d.Dfa.accel_stops q s pos limit)
  done

let suite =
  [
    Alcotest.test_case "classification" `Quick test_classify;
    Alcotest.test_case "word-level oracle" `Quick test_word_oracle;
    Alcotest.test_case "scalar tails" `Quick test_tails;
    Alcotest.test_case "lane endianness" `Quick test_lane_endianness;
    Alcotest.test_case "dual-cursor oracle" `Quick test_dual_oracle;
    Alcotest.test_case "golden random battery" `Quick test_random_battery;
  ]
