open Streamtok

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_source_of_string () =
  let s = Source.of_string "hello world" in
  let buf = Bytes.create 4 in
  check_int "first read" 4 (Source.read s buf ~pos:0 ~len:4);
  check "content" true (Bytes.to_string buf = "hell");
  check_int "reads counted" 1 (Source.reads s);
  let rest = Buffer.create 16 in
  let rec drain () =
    let n = Source.read s buf ~pos:0 ~len:4 in
    if n > 0 then begin
      Buffer.add_subbytes rest buf 0 n;
      drain ()
    end
  in
  drain ();
  check "rest" true (Buffer.contents rest = "o world");
  check_int "total bytes" 11 (Source.bytes_read s)

let test_source_max_per_read () =
  let s = Source.of_string ~max_per_read:3 "abcdefgh" in
  let buf = Bytes.create 100 in
  check_int "capped" 3 (Source.read s buf ~pos:0 ~len:100);
  check_int "capped again" 3 (Source.read s buf ~pos:0 ~len:100);
  check_int "tail" 2 (Source.read s buf ~pos:0 ~len:100);
  check_int "eof" 0 (Source.read s buf ~pos:0 ~len:100)

let test_buffered_iter () =
  let s = Source.of_string (String.make 1000 'x') in
  let b = Buffered.create ~capacity:64 s in
  let seen = ref 0 in
  Buffered.iter b (fun _buf _pos len -> seen := !seen + len);
  check_int "all bytes seen" 1000 !seen;
  check "multiple reads" true (Source.reads s > 10)

let test_buffered_streamtok () =
  let e =
    match Engine.compile (Grammar.dfa Formats.csv) with
    | Ok e -> e
    | Error _ -> assert false
  in
  let input = Gen_data.csv ~target_bytes:20_000 () in
  let reference, _ = Engine.tokens e input in
  List.iter
    (fun capacity ->
      let acc = ref [] in
      let outcome =
        Buffered.run_streamtok e ~capacity
          (Source.of_string input)
          ~emit:(fun lex r -> acc := (lex, r) :: !acc)
      in
      check
        (Printf.sprintf "capacity %d" capacity)
        true
        (outcome = Engine.Finished
        && Gen.same_tokens reference (List.rev !acc)))
    [ 13; 256; 65536 ]

(* ---- fd source/sink: EINTR/EAGAIN tolerance on non-blocking fds ----

   The peer runs in a thread (Unix.fork is unavailable once the parallel
   tests have spawned domains); sleeps on the peer side make the main
   side actually hit EAGAIN on its non-blocking fd. *)

let fd_payload = String.init 100_000 (fun i -> Char.chr (i land 0xff))

let drain_source s =
  let buf = Bytes.create 4096 in
  let acc = Buffer.create (String.length fd_payload) in
  let rec go () =
    let n = Source.read s buf ~pos:0 ~len:4096 in
    if n > 0 then begin
      Buffer.add_subbytes acc buf 0 n;
      go ()
    end
  in
  go ();
  Buffer.contents acc

let spawn_writer ?(delay = 0.) w =
  Thread.create
    (fun () ->
      let pos = ref 0 in
      while !pos < String.length fd_payload do
        let n = min 16384 (String.length fd_payload - !pos) in
        pos := !pos + Unix.write_substring w fd_payload !pos n;
        if delay > 0. then Thread.delay delay
      done;
      Unix.close w)
    ()

let test_source_of_fd_pipe () =
  (* Blocking pipe: plain correctness. *)
  let r, w = Unix.pipe () in
  let writer = spawn_writer w in
  let got = drain_source (Source.of_fd r) in
  Unix.close r;
  Thread.join writer;
  check "pipe content intact" true (got = fd_payload)

let test_source_of_fd_nonblocking () =
  (* Slow writer + non-blocking reader: of_fd must absorb EAGAIN instead
     of returning a spurious 0 (= EOF). *)
  let r, w = Unix.pipe () in
  let writer = spawn_writer ~delay:0.002 w in
  Unix.set_nonblock r;
  let got = drain_source (Source.of_fd r) in
  Unix.close r;
  Thread.join writer;
  check "nonblocking content intact" true (got = fd_payload)

let test_sink_of_fd_nonblocking () =
  (* Slow reader + non-blocking writer: Sink.write must complete partial
     writes across EAGAIN (a socketpair buffer is far smaller than the
     512 KiB written). *)
  let rd, wr = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let total_bytes = 8 * 65536 in
  let total = ref 0 in
  let reader =
    Thread.create
      (fun () ->
        let buf = Bytes.create 4096 in
        let rec slurp () =
          let n = Unix.read rd buf 0 4096 in
          if n > 0 then begin
            total := !total + n;
            Thread.delay 0.0005;
            slurp ()
          end
        in
        slurp ();
        Unix.close rd)
      ()
  in
  Unix.set_nonblock wr;
  let sink = Sink.of_fd wr in
  let chunk = String.make 65536 'z' in
  for _ = 1 to 8 do
    Sink.write_string sink chunk
  done;
  check_int "bytes_written" total_bytes (Sink.bytes_written sink);
  Unix.shutdown wr Unix.SHUTDOWN_SEND;
  Thread.join reader;
  Unix.close wr;
  check_int "reader saw every byte" total_bytes !total

let test_counter_sink () =
  let c = Sink.counter ~num_rules:3 in
  Sink.count_emit c "a" 0;
  Sink.count_emit c "b" 2;
  Sink.count_emit c "c" 2;
  check_int "total" 3 (Sink.total c);
  check "per rule" true (Sink.per_rule c = [| 1; 0; 2 |])

let test_collector_sink () =
  let c = Sink.collector () in
  Sink.collect_emit c "x" 1;
  Sink.collect_emit c "y" 0;
  check "order preserved" true (Sink.collected c = [ ("x", 1); ("y", 0) ])

let test_blackhole_sink () =
  let b = Sink.blackhole () in
  Sink.blackhole_emit b "abc" 1;
  Sink.blackhole_emit b "" 0;
  (* value is deterministic for fixed inputs *)
  let b2 = Sink.blackhole () in
  Sink.blackhole_emit b2 "abc" 1;
  Sink.blackhole_emit b2 "" 0;
  check_int "deterministic" (Sink.blackhole_value b) (Sink.blackhole_value b2)

let suite =
  [
    Alcotest.test_case "source of string" `Quick test_source_of_string;
    Alcotest.test_case "source max_per_read" `Quick test_source_max_per_read;
    Alcotest.test_case "buffered iter" `Quick test_buffered_iter;
    Alcotest.test_case "buffered streamtok" `Quick test_buffered_streamtok;
    Alcotest.test_case "source of_fd pipe" `Quick test_source_of_fd_pipe;
    Alcotest.test_case "source of_fd nonblocking" `Quick
      test_source_of_fd_nonblocking;
    Alcotest.test_case "sink of_fd nonblocking" `Quick
      test_sink_of_fd_nonblocking;
    Alcotest.test_case "counter sink" `Quick test_counter_sink;
    Alcotest.test_case "collector sink" `Quick test_collector_sink;
    Alcotest.test_case "blackhole sink" `Quick test_blackhole_sink;
  ]
