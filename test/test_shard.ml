(* Domain sharding: the engine cache under real multi-domain compile
   storms (exactly-one-compile, LRU integrity, cached failures), and the
   worker-domain pool end-to-end — socketpair handoff, token parity on
   every connection, pool-wide stats aggregation, and drain liveness. *)

open Streamtok
module W = Serve.Wire

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let json_rules = Grammar.rules Formats.json

(* Spawn [n] domains, hold them at a barrier so the racy section really
   races, run [f], join. *)
let run_domains n f =
  let started = Atomic.make 0 in
  let doms =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            Atomic.incr started;
            while Atomic.get started < n do
              Domain.cpu_relax ()
            done;
            f i))
  in
  List.iter Domain.join doms

(* ---- engine cache storms ---- *)

let test_storm_one_compile () =
  let cache = Engine_cache.create () in
  let iters = 8 in
  let engines = Array.make 4 [] in
  run_domains 4 (fun i ->
      for _ = 1 to iters do
        match Engine_cache.find_or_compile cache json_rules with
        | Ok e -> engines.(i) <- e :: engines.(i)
        | Error _ -> assert false
      done);
  check_int "exactly one compile under a 4-domain storm" 1
    (Engine_cache.compiles cache);
  check_int "every other lookup hit" ((4 * iters) - 1)
    (Engine_cache.hits cache);
  let e0 = List.hd engines.(0) in
  Array.iter
    (List.iter (fun e -> check "all domains share one engine" true (e == e0)))
    engines

let test_eviction_storm () =
  (* 4 distinct keys (flag variants) hammering a 2-entry cache from 4
     domains: evictions race with lookups, and the accounting identities
     prove no lookup was lost or double-counted (no torn LRU state). *)
  let cache = Engine_cache.create ~max_entries:2 () in
  let variants = [| (true, true); (true, false); (false, true); (false, false) |] in
  let rounds = 8 in
  run_domains 4 (fun i ->
      for r = 0 to rounds - 1 do
        let classes, accel = variants.((i + r) mod 4) in
        match Engine_cache.find_or_compile cache ~classes ~accel json_rules with
        | Ok _ -> ()
        | Error _ -> assert false
      done);
  check "resident entries bounded" true (Engine_cache.size cache <= 2);
  check_int "every lookup was a hit or a compile" (4 * rounds)
    (Engine_cache.compiles cache + Engine_cache.hits cache);
  check_int "evictions = compiles - resident"
    (Engine_cache.compiles cache - Engine_cache.size cache)
    (Engine_cache.evictions cache)

let test_cached_failure_storm () =
  (* A non-streamable grammar: the unbounded-TND analysis runs once,
     every domain gets the cached failure. *)
  let g =
    match Grammar.of_source ~name:"tnd-unbounded" "a\nb\n(a|b)*c" with
    | Ok g -> g
    | Error msg -> Alcotest.fail msg
  in
  let rules = Grammar.rules g in
  let cache = Engine_cache.create () in
  run_domains 4 (fun _ ->
      for _ = 1 to 4 do
        match Engine_cache.find_or_compile cache rules with
        | Error Engine.Unbounded_tnd -> ()
        | Ok _ -> assert false
      done);
  check_int "failure analyzed exactly once" 1 (Engine_cache.compiles cache)

(* ---- pool end-to-end over socketpairs ---- *)

let encode_reqs reqs =
  let b = Buffer.create 4096 in
  List.iter (fun r -> W.encode_request b r) reqs;
  Buffer.to_bytes b

let write_all fd b =
  let n = Bytes.length b in
  let pos = ref 0 in
  while !pos < n do
    match Unix.write fd b !pos (n - !pos) with
    | w -> pos := !pos + w
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let read_all fd =
  let buf = Bytes.create 4096 in
  let out = Buffer.create 4096 in
  let rec loop () =
    match Unix.read fd buf 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes out buf 0 n;
        loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    (* a worker closing with unread request bytes resets the socket —
       for the shutdown race that is as final as a clean EOF *)
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  loop ();
  Buffer.contents out

let tokens_of_stream s =
  match W.decode_all s with
  | Error msg -> Alcotest.fail ("corrupt reply stream: " ^ msg)
  | Ok frames ->
      List.concat_map
        (fun f ->
          if f.W.tag = W.tag_tokens then
            match W.reply_of_frame f with
            | Ok (W.Tokens toks) -> toks
            | _ -> Alcotest.fail "bad TOKENS frame"
          else [])
        frames

let has_error_frame s =
  match W.decode_all s with
  | Error _ -> true
  | Ok frames -> List.exists (fun f -> f.W.tag = W.tag_error) frames

let pool_counter reg name =
  let metrics = Obs.Metrics.Registry.metrics reg in
  match List.find_opt (fun m -> m.Obs.Metrics.name = name) metrics with
  | Some { Obs.Metrics.kind = Obs.Metrics.Counter c; _ } ->
      Obs.Metrics.Counter.value c
  | _ -> Alcotest.fail (Printf.sprintf "no counter %s" name)

let test_pool_parity_and_stats () =
  let input = Gen_data.json ~seed:0x5EEDL ~target_bytes:2048 () in
  let engine =
    match Engine.compile (Grammar.dfa Formats.json) with
    | Ok e -> e
    | Error _ -> assert false
  in
  let expect = ref [] in
  let tok =
    Stream_tokenizer.create engine ~emit:(fun lex rule ->
        expect := (lex, rule) :: !expect)
  in
  Stream_tokenizer.feed_string tok input;
  (match Stream_tokenizer.finish tok with
  | Engine.Finished -> ()
  | Engine.Failed _ -> assert false);
  let expect = List.rev !expect in
  let pool = Serve.Shard.create_pool ~domains:2 () in
  let reqs = encode_reqs [ W.Open "json"; W.Feed input; W.Flush; W.Close ] in
  let clients =
    List.init 4 (fun _ ->
        let cl, sv = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Serve.Shard.inject pool sv;
        cl)
  in
  (* the workload is small enough that kernel socket buffers absorb the
     replies, so plain sequential write-then-read cannot deadlock *)
  List.iter (fun cl -> write_all cl reqs) clients;
  let streams = List.map read_all clients in
  List.iter Unix.close clients;
  Serve.Shard.stop pool;
  Serve.Shard.join pool;
  List.iter
    (fun s ->
      check "no error reply" false (has_error_frame s);
      let got = tokens_of_stream s in
      check_int "token count parity" (List.length expect) (List.length got);
      check "token parity with direct engine" true (got = expect))
    streams;
  match Serve.Shard.stats pool with
  | None -> Alcotest.fail "pool published no stats"
  | Some reg ->
      (* cross-domain aggregation: 4 sessions round-robined over 2
         workers sum back to 4; the shared cache compiled json once *)
      check_int "sessions aggregated across workers" 4
        (pool_counter reg "sessions_opened");
      check_int "one compile pool-wide (shared cache)" 1
        (pool_counter reg "engine_cache_compiles")

let test_stop_with_inflight_handoff () =
  (* stop racing a just-injected connection: whichever side wins, the
     client must see EOF (tokens or a Shutting_down error, never a
     wedge) and join must return. *)
  let pool = Serve.Shard.create_pool ~domains:2 () in
  let reqs = encode_reqs [ W.Open "json"; W.Feed "[1, 2]"; W.Flush; W.Close ] in
  let cl, sv = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  write_all cl reqs;
  Serve.Shard.inject pool sv;
  Serve.Shard.stop pool;
  let s = read_all cl in
  Unix.close cl;
  Serve.Shard.join pool;
  (* liveness is the assertion: read_all and join returned. The reply
     depends on who won the race — tokens, a Shutting_down error, or a
     reset before any reply. *)
  check "connection resolved without wedging" true
    (s = "" || tokens_of_stream s <> [] || has_error_frame s)

let suite =
  [
    Alcotest.test_case "cache storm: exactly one compile" `Quick
      test_storm_one_compile;
    Alcotest.test_case "cache storm: eviction integrity" `Quick
      test_eviction_storm;
    Alcotest.test_case "cache storm: cached failure" `Quick
      test_cached_failure_storm;
    Alcotest.test_case "pool parity + aggregated stats" `Quick
      test_pool_parity_and_stats;
    Alcotest.test_case "stop with in-flight handoff" `Quick
      test_stop_with_inflight_handoff;
  ]
