(* Self-loop run acceleration: soundness of the per-state stop-byte bitmaps
   against the transition function, build determinism, the skip-loop
   scanners' unit behaviour around the unroll boundaries, golden-corpus
   parity of accelerated vs. reference engines (batch and chunked), the
   streaming skip counters, and the .stc v4 accel section (round-trip,
   v2/v3 compat, corruption). The SWAR tier itself (word-level oracle,
   endianness, random battery) lives in test_swar.ml. *)

open Streamtok
module Chunking = Fuzz.Chunking

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let golden_grammars = Formats.all @ Languages.all

(* the build-time profitability threshold (Dfa.accel_min_loop_bytes) *)
let min_loop_bytes = 4

(* ---- bitmap soundness ---- *)

(* The stop bitmaps are filled for every state of an accelerated build:
   bit b clear must mean step(q,b) = q, bit b set must mean step(q,b) <> q.
   The flag is profitability only: set iff >= min_loop_bytes self-loop. *)
let test_bitmap_sound () =
  List.iter
    (fun g ->
      let name = g.Grammar.name in
      let d = Grammar.dfa g in
      check (name ^ ": accel on by default") true (Dfa.accel_enabled d);
      check_int
        (name ^ ": table bytes = 314/state")
        (314 * Dfa.size d)
        (Dfa.accel_table_bytes d);
      let flagged = ref 0 in
      for q = 0 to Dfa.size d - 1 do
        let loop_bytes = ref 0 in
        for b = 0 to 255 do
          let self = Dfa.step d q (Char.chr b) = q in
          if self then incr loop_bytes;
          if Dfa.accel_stop_byte d q b <> not self then
            Alcotest.failf "%s: state %d byte %d: stop bit vs step disagree"
              name q b
        done;
        let flag = Dfa.is_accel_state d q in
        if flag then incr flagged;
        if flag <> (!loop_bytes >= min_loop_bytes) then
          Alcotest.failf "%s: state %d: flag %b but %d self-loop bytes" name q
            flag !loop_bytes
      done;
      check_int (name ^ ": flag count consistent") !flagged
        (Dfa.accel_state_count d);
      (* every shipped grammar has a dominant run state (identifiers,
         strings, comments, whitespace...) — the analysis must find it *)
      check (name ^ ": finds at least one accel state") true (!flagged > 0))
    golden_grammars

let test_build_deterministic () =
  List.iter
    (fun g ->
      let d1 = Grammar.dfa g in
      let d2 = Dfa.of_rules (Grammar.rules g) in
      check (g.Grammar.name ^ ": rebuild identical") true (Dfa.equal d1 d2);
      (* strip + re-derive round-trips: acceleration is pure derived data *)
      let stripped = Dfa.attach_accel ~enabled:false d1 in
      check (g.Grammar.name ^ ": stripped is off") false
        (Dfa.accel_enabled stripped);
      check_int (g.Grammar.name ^ ": stripped has no states") 0
        (Dfa.accel_state_count stripped);
      check (g.Grammar.name ^ ": re-derive identical") true
        (Dfa.equal d1 (Dfa.attach_accel ~enabled:true stripped)))
    golden_grammars

let test_noaccel_reference_build () =
  let d = Dfa.of_rules ~accel:false (Grammar.rules Formats.json) in
  check "noaccel: disabled" false (Dfa.accel_enabled d);
  check_int "noaccel: zero accel states" 0 (Dfa.accel_state_count d);
  check "noaccel: no stop bytes reported" true
    (let any = ref false in
     for q = 0 to Dfa.size d - 1 do
       for b = 0 to 255 do
         if Dfa.accel_stop_byte d q b then any := true
       done
     done;
     not !any);
  (* flags are still allocated (hot loops probe unconditionally), all 0 *)
  check "noaccel: flags all zero" true
    (Bytes.for_all (fun c -> c = '\000') d.Dfa.accel_flags);
  check_int "noaccel: empty stop table" 0 (Array.length d.Dfa.accel_stops);
  check "noaccel: kinds all zero" true
    (Bytes.for_all (fun c -> c = '\000') d.Dfa.accel_kind);
  check_int "noaccel: empty mask table" 0 (Array.length d.Dfa.accel_swar);
  check_int "noaccel: zero swar states" 0 (Dfa.accel_swar_state_count d);
  (* a swar-off build keeps the bitmap tier but classifies nothing *)
  let ds = Dfa.of_rules ~swar:false (Grammar.rules Formats.json) in
  check "swar-off: accel still on" true (Dfa.accel_enabled ds);
  check "swar-off: accel states unchanged" true (Dfa.accel_state_count ds > 0);
  check "swar-off: classification disabled" false (Dfa.accel_swar_enabled ds);
  check_int "swar-off: zero swar states" 0 (Dfa.accel_swar_state_count ds);
  check "swar-off: kinds all zero" true
    (Bytes.for_all (fun c -> c = '\000') ds.Dfa.accel_kind)

(* ---- skip-loop scanners ---- *)

(* hand-built stop table: state 0 stops on 'x' only, state 1 on 'y' only *)
let toy_stops =
  let stops = Array.make 16 0 in
  let set q b = stops.((q * 8) + (b lsr 5)) <- 1 lsl (b land 31) in
  set 0 (Char.code 'x');
  set 1 (Char.code 'y');
  stops

(* both toy states are single-stop, so classification puts them in the
   SWAR tier; forcing the kinds to 0 exercises the bitmap dispatch on the
   very same assertions *)
let toy_kinds, toy_masks = Dfa.swar_classify ~num_states:2 ~stops:toy_stops
let toy_tbl = Dfa.swar_byte_table ~num_states:2 ~stops:toy_stops
let toy_bitmap_kinds = Bytes.make 2 '\000'

let skip q s pos limit =
  let v = Dfa.skip_run toy_stops toy_kinds toy_masks q s pos limit in
  check_int "bitmap dispatch agrees" v
    (Dfa.skip_run toy_stops toy_bitmap_kinds [||] q s pos limit);
  check_int "skip_run_bitmap agrees" v
    (Dfa.skip_run_bitmap toy_stops q s pos limit);
  v

let skip2 qa qb ~off s pos limit =
  let v =
    Dfa.skip_run2 toy_stops toy_kinds toy_masks toy_tbl qa toy_stops
      toy_kinds toy_masks toy_tbl qb ~off s pos limit
  in
  (* forcing one side's kind to bitmap routes the same pair through each of
     the two merged mixed loops; both must agree with the dual-SWAR path *)
  check_int "mixed dispatch agrees (A bitmap)" v
    (Dfa.skip_run2 toy_stops toy_bitmap_kinds [||] toy_tbl qa toy_stops
       toy_kinds toy_masks toy_tbl qb ~off s pos limit);
  check_int "mixed dispatch agrees (B bitmap)" v
    (Dfa.skip_run2 toy_stops toy_kinds toy_masks toy_tbl qa toy_stops
       toy_bitmap_kinds [||] toy_tbl qb ~off s pos limit);
  check_int "skip_run2_bitmap agrees" v
    (Dfa.skip_run2_bitmap toy_stops qa toy_stops qb ~off s pos limit);
  v

let test_skip_run_unit () =
  check "toy states are SWAR-classified" true
    (Bytes.get toy_kinds 0 = '\001' && Bytes.get toy_kinds 1 = '\001');
  (* stop at every distance 0..20 from pos: covers the scalar tail and the
     word-at-a-time body on both sides of its boundaries *)
  for r = 0 to 20 do
    let s = String.make r 'a' ^ "x" ^ String.make 3 'a' in
    check_int (Printf.sprintf "stop after %d" r) r (skip 0 s 0 (String.length s))
  done;
  (* no stop byte: the whole range self-loops to the limit *)
  for n = 0 to 20 do
    let s = String.make n 'a' in
    check_int (Printf.sprintf "clean run %d" n) n (skip 0 s 0 n)
  done;
  (* the limit clamps the scan even when the stop byte lies beyond it *)
  check_int "limit clamps" 13 (skip 0 (String.make 13 'a' ^ "bx") 5 13);
  (* empty range *)
  check_int "empty range" 7 (skip 0 (String.make 9 'a') 7 7);
  (* stop at pos itself *)
  check_int "stop at pos" 2 (skip 0 "aax" 2 3)

let test_skip_run2_unit () =
  (* dual-cursor: cursor a reads s.[i] against state 0 ('x' stops), cursor b
     reads s.[i+off] against state 1 ('y' stops); first stop wins *)
  let n = 24 in
  (* b-cursor stops first: 'y' at index 9, off 2 -> stop at i = 7 *)
  let s = Bytes.make n 'a' in
  Bytes.set s 9 'y';
  check_int "b stops first (off 2)" 7
    (skip2 0 1 ~off:2 (Bytes.to_string s) 0 (n - 2));
  (* a-cursor stops first *)
  Bytes.set s 3 'x';
  check_int "a stops first" 3 (skip2 0 1 ~off:2 (Bytes.to_string s) 0 (n - 2));
  (* negative offset (the streaming M_te shape): b reads behind a *)
  let s = Bytes.make n 'a' in
  Bytes.set s 5 'y';
  check_int "b stops first (off -3)" 8
    (skip2 0 1 ~off:(-3) (Bytes.to_string s) 3 n);
  (* clean to the limit at every length (unroll boundaries) *)
  for len = 0 to 12 do
    let s = String.make (len + 4) 'a' in
    check_int (Printf.sprintf "clean dual run %d" len) len
      (skip2 0 1 ~off:4 s 0 len)
  done;
  (* mixed dispatch: one SWAR cursor against one bitmap cursor *)
  let s = Bytes.make n 'a' in
  Bytes.set s 9 'y';
  check_int "mixed swar/bitmap dual" 7
    (Dfa.skip_run2 toy_stops toy_bitmap_kinds [||] toy_tbl 0 toy_stops
       toy_kinds toy_masks toy_tbl 1 ~off:2 (Bytes.to_string s) 0 (n - 2))

(* ---- golden corpus parity: accel vs noaccel, batch + chunked ---- *)

let engines_of rules =
  match
    ( Engine.compile (Dfa.of_rules rules),
      Engine.compile (Dfa.of_rules ~accel:false rules) )
  with
  | Ok accel, Ok plain -> Some (accel, plain)
  | Error Engine.Unbounded_tnd, Error Engine.Unbounded_tnd -> None
  | _ -> Alcotest.fail "accel/noaccel disagree on max-TND boundedness"

let same_run (t1, o1) (t2, o2) =
  Gen.same_tokens t1 t2 && Engine.outcome_equal o1 o2

let token_ends toks =
  let pos = ref 0 in
  List.map
    (fun (lex, _) ->
      pos := !pos + String.length lex;
      !pos)
    toks

let check_grammar_on_input name accel plain input =
  let ref_run = Engine.tokens plain input in
  if not (same_run ref_run (Engine.tokens accel input)) then
    Alcotest.failf "%s: batch accel differs from noaccel" name;
  let ends = token_ends (fst ref_run) in
  let rng = Prng.create 0xACCE1L in
  let delay = max 1 (Engine.k plain) in
  List.iter
    (fun (cname, ch) ->
      let a = Chunking.apply accel input ch in
      let p = Chunking.apply plain input ch in
      if not (same_run p a) then
        Alcotest.failf "%s: chunking %s accel differs from noaccel" name cname)
    (Chunking.standard ~rng ~token_ends:ends ~delay (String.length input))

let test_golden_grammars () =
  List.iter
    (fun g ->
      let name = g.Grammar.name in
      match engines_of (Grammar.rules g) with
      | None -> ()
      | Some (accel, plain) ->
          let input =
            match Gen_data.by_name name with
            | Some gen -> gen ~seed:0x60D1DL ~target_bytes:20_000 ()
            | None ->
                Fuzz.Gen.token_dense
                  (Prng.create 0xDA7AL)
                  (Engine.dfa accel) ~target_len:20_000
          in
          check_grammar_on_input name accel plain input)
    golden_grammars

(* ---- streaming counters ---- *)

let test_streaming_skip_counters () =
  let rules = Parser.parse_grammar "[a-z][a-z]*\n[ ][ ]*" in
  let e = match Engine.compile_rules rules with Ok e -> e | Error _ -> assert false in
  check "engine reports accel states" true (Engine.accel_states e > 0);
  let stats = Run_stats.create () in
  let input =
    String.concat " " (List.init 50 (fun i -> String.make (10 + (i mod 30)) 'w'))
  in
  let count = ref 0 in
  let st = Stream_tokenizer.create ~stats e ~emit:(fun _ _ -> incr count) in
  (* 7-byte chunks: runs straddle most chunk boundaries *)
  let pos = ref 0 in
  while !pos < String.length input do
    let len = min 7 (String.length input - !pos) in
    Stream_tokenizer.feed st input !pos len;
    pos := !pos + len
  done;
  ignore (Stream_tokenizer.finish st);
  check_int "all tokens out" 99 !count;
  let skipped = Stream_tokenizer.accel_skipped_bytes st in
  (* 7-byte chunks cost ~3 un-skippable bytes per chunk (the run-of-two
     entry steps and the stop-short byte before the probe); ~32% of the
     stream still skips (~75% at 64-byte chunks) *)
  check "skips a large share of the run bytes" true
    (skipped > String.length input / 4);
  check_int "stats counter matches" skipped (Run_stats.accel_skipped stats);
  (* the noaccel engine never skips *)
  let ep =
    match Engine.compile (Dfa.of_rules ~accel:false rules) with
    | Ok e -> e
    | Error _ -> assert false
  in
  let st' = Stream_tokenizer.create ep ~emit:(fun _ _ -> ()) in
  Stream_tokenizer.feed_string st' input;
  ignore (Stream_tokenizer.finish st');
  check_int "noaccel skips nothing" 0 (Stream_tokenizer.accel_skipped_bytes st')

(* ---- .stc v4 accel section ---- *)

let compile_grammar g =
  match Engine.compile (Grammar.dfa g) with
  | Ok e -> e
  | Error _ -> assert false

(* the same Fletcher sum Engine_io uses, for blob surgery *)
let fix_checksum b =
  let a = ref 1 and s = ref 0 in
  for i = 9 to Bytes.length b - 1 do
    a := (!a + Char.code (Bytes.get b i)) mod 65521;
    s := (!s + !a) mod 65521
  done;
  let c = (!s lsl 16) lor !a in
  Bytes.set b 5 (Char.chr (c land 0xff));
  Bytes.set b 6 (Char.chr ((c lsr 8) land 0xff));
  Bytes.set b 7 (Char.chr ((c lsr 16) land 0xff));
  Bytes.set b 8 (Char.chr ((c lsr 24) land 0xff))

let tables_end d =
  281 + (4 * Dfa.size d) + (4 * Dfa.size d * Dfa.num_classes d)

let test_stc_v4_roundtrip () =
  let e = compile_grammar Formats.json in
  let blob = Engine_io.to_string e in
  check_int "v4 version byte" 4 (Char.code blob.[4]);
  (match Engine_io.of_string blob with
  | Ok e' ->
      check "accel tables survive the round trip" true
        (Dfa.equal (Engine.dfa e) (Engine.dfa e'));
      check "swar classification survives" true
        (Dfa.accel_swar_state_count (Engine.dfa e') > 0);
      check "round trip is bit-for-bit stable" true
        (String.equal blob (Engine_io.to_string e'))
  | Error msg -> Alcotest.failf "v4 load failed: %s" msg);
  (* an unaccelerated engine round-trips as unaccelerated *)
  let ep =
    match Engine.compile (Dfa.of_rules ~accel:false (Grammar.rules Formats.json)) with
    | Ok e -> e
    | Error _ -> assert false
  in
  match Engine_io.of_string (Engine_io.to_string ep) with
  | Ok ep' ->
      check "noaccel stays off after round trip" false
        (Dfa.accel_enabled (Engine.dfa ep'))
  | Error msg -> Alcotest.failf "noaccel v4 load failed: %s" msg

let test_stc_v2_compat () =
  (* a v2 blob is a v4 blob cut at the end of the transition tables with
     the version byte rewound; acceleration must be recomputed on load *)
  let e = compile_grammar Formats.csv in
  let d = Engine.dfa e in
  let v4 = Engine_io.to_string e in
  let v2 = Bytes.of_string (String.sub v4 0 (tables_end d)) in
  Bytes.set v2 4 '\002';
  fix_checksum v2;
  match Engine_io.of_string (Bytes.to_string v2) with
  | Ok e' ->
      check "v2 load recomputes identical accel tables" true
        (Dfa.equal d (Engine.dfa e'))
  | Error msg -> Alcotest.failf "v2 load failed: %s" msg

let test_stc_v3_compat () =
  (* a v3 blob is a v4 blob with the per-state kind section cut off and the
     version byte rewound; the SWAR classification must be recomputed on
     load, identically to the build-time one *)
  let e = compile_grammar Formats.json in
  let d = Engine.dfa e in
  let v4 = Engine_io.to_string e in
  let n = Dfa.size d in
  let v3 = Bytes.of_string (String.sub v4 0 (String.length v4 - n)) in
  Bytes.set v3 4 '\003';
  fix_checksum v3;
  match Engine_io.of_string (Bytes.to_string v3) with
  | Ok e' ->
      check "v3 load recomputes identical classification" true
        (Dfa.equal d (Engine.dfa e'));
      check_int "v3 load finds the same swar states"
        (Dfa.accel_swar_state_count d)
        (Dfa.accel_swar_state_count (Engine.dfa e'))
  | Error msg -> Alcotest.failf "v3 load failed: %s" msg

let test_stc_accel_corruption () =
  let e = compile_grammar Formats.csv in
  let d = Engine.dfa e in
  let blob = Engine_io.to_string e in
  let fbase = tables_end d + 1 in
  (* a flag byte outside {0,1} is malformed *)
  let b = Bytes.of_string blob in
  Bytes.set b fbase '\002';
  fix_checksum b;
  check "flag byte > 1 rejected" true
    (match Engine_io.of_string (Bytes.to_string b) with
    | Error _ -> true
    | Ok _ -> false);
  (* a flipped (well-formed) flag contradicts the recomputed analysis *)
  let b = Bytes.of_string blob in
  Bytes.set b fbase (if Bytes.get b fbase = '\000' then '\001' else '\000');
  fix_checksum b;
  check "inconsistent accel tables rejected under verify" true
    (match Engine_io.of_string (Bytes.to_string b) with
    | Error _ -> true
    | Ok _ -> false);
  (* ... but accepted when the caller opts out of verification *)
  check "unverified load trusts the tables" true
    (match Engine_io.of_string ~verify:false (Bytes.to_string b) with
    | Ok _ -> true
    | Error _ -> false)

let test_stc_swar_corruption () =
  let e = compile_grammar Formats.json in
  let d = Engine.dfa e in
  let n = Dfa.size d in
  let blob = Engine_io.to_string e in
  let kbase = tables_end d + 1 + n + (n * 32) in
  let reject what b =
    match Engine_io.of_string (Bytes.to_string b) with
    | Error msg ->
        check (what ^ ": error mentions the accel section") true
          (let has needle =
             let nl = String.length needle and ml = String.length msg in
             let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
             go 0
           in
           has "kind" || has "table sizes")
    | Ok _ -> Alcotest.failf "%s: corrupted blob accepted" what
  in
  (* a kind byte above 4 is malformed *)
  let b = Bytes.of_string blob in
  Bytes.set b kbase '\007';
  fix_checksum b;
  reject "kind byte > 4" b;
  (* a well-formed but wrong kind contradicts the stop bitmaps; this is
     structural validation, so it must hold even without verify *)
  let b = Bytes.of_string blob in
  Bytes.set b kbase (if Bytes.get b kbase = '\000' then '\001' else '\000');
  fix_checksum b;
  reject "kind inconsistent with bitmaps" b;
  check "kind inconsistency rejected even unverified" true
    (match Engine_io.of_string ~verify:false (Bytes.to_string b) with
    | Error _ -> true
    | Ok _ -> false);
  (* a truncated kind section makes the blob the wrong length for v4 *)
  let b = Bytes.of_string (String.sub blob 0 (String.length blob - 1)) in
  fix_checksum b;
  reject "truncated kind section" b

let suite =
  [
    Alcotest.test_case "stop bitmaps sound" `Quick test_bitmap_sound;
    Alcotest.test_case "build deterministic" `Quick test_build_deterministic;
    Alcotest.test_case "noaccel reference build" `Quick
      test_noaccel_reference_build;
    Alcotest.test_case "skip_run unit" `Quick test_skip_run_unit;
    Alcotest.test_case "skip_run2 unit" `Quick test_skip_run2_unit;
    Alcotest.test_case "golden grammars parity" `Quick test_golden_grammars;
    Alcotest.test_case "streaming skip counters" `Quick
      test_streaming_skip_counters;
    Alcotest.test_case "stc v4 roundtrip" `Quick test_stc_v4_roundtrip;
    Alcotest.test_case "stc v2 compat" `Quick test_stc_v2_compat;
    Alcotest.test_case "stc v3 compat" `Quick test_stc_v3_compat;
    Alcotest.test_case "stc accel corruption" `Quick test_stc_accel_corruption;
    Alcotest.test_case "stc swar corruption" `Quick test_stc_swar_corruption;
  ]
