(* The fuzzing subsystem's own suite: chunking algebra, the
   streaming-equivalence property under arbitrary partitions, corpus
   regression replay, repro round-trips, the shrinker, and driver
   determinism. *)

open Streamtok
module Chunking = Fuzz.Chunking
module Differential = Fuzz.Differential
module Shrink = Fuzz.Shrink
module Repro = Fuzz.Repro
module Driver = Fuzz.Driver

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---- chunking ---- *)

let test_chunking () =
  check "whole is partition" true (Chunking.is_partition (Chunking.whole 7) 7);
  check_int "whole 0" 0 (List.length (Chunking.whole 0));
  Alcotest.(check (list int)) "bytes" [ 3; 3; 1 ] (Chunking.bytes 3 7);
  Alcotest.(check (list int)) "at_cuts" [ 2; 3; 2 ] (Chunking.at_cuts [ 2; 5 ] 7);
  Alcotest.(check (list int))
    "at_cuts ignores bad" [ 2; 5 ]
    (Chunking.at_cuts [ 0; 2; 2; 9 ] 7);
  Alcotest.(check (list int))
    "straddle shift" [ 1; 3; 3 ]
    (Chunking.straddle ~token_ends:[ 2; 5 ] ~shift:(-1) 7);
  let rng = Prng.create 11L in
  for n = 0 to 40 do
    check "random is partition" true
      (Chunking.is_partition (Chunking.random rng n) n)
  done

(* ---- streaming equivalence: ANY partition ≡ batch ---- *)

let behaviour_of_engine (tokens, o) =
  {
    Differential.tokens;
    failure =
      (match o with
      | Engine.Finished -> None
      | Engine.Failed { offset; pending } -> Some (offset, pending));
  }

let prop_stream_any_partition =
  QCheck.Test.make ~count:300 ~name:"stream under any partition = batch"
    Fuzz.Qgen.grammar_input_chunks_arb (fun (rules, input, chunks) ->
      match Engine.compile_rules rules with
      | Error _ -> QCheck.assume_fail ()
      | Ok e ->
          let batch = behaviour_of_engine (Engine.tokens e input) in
          let stream = behaviour_of_engine (Chunking.apply e input chunks) in
          Differential.behaviour_equal_streaming batch stream)

(* the full battery stays clean on random small-alphabet pairs *)
let prop_differential_clean =
  QCheck.Test.make ~count:60 ~name:"differential battery has no mismatches"
    Fuzz.Qgen.grammar_input_arb (fun (rules, input) ->
      let spec = Differential.spec ~domain_counts:[] rules input in
      (Differential.check spec).Differential.mismatches = [])

(* ---- corpus replay ---- *)

let corpus_files () =
  match Sys.readdir "corpus" with
  | entries ->
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".repro")
      |> List.sort compare
      |> List.map (Filename.concat "corpus")
  | exception Sys_error _ -> []

let test_corpus_replay () =
  let files = corpus_files () in
  check "corpus present" true (List.length files >= 6);
  List.iter
    (fun path ->
      match Repro.load path with
      | Error msg -> Alcotest.failf "%s: %s" path msg
      | Ok r ->
          let res = Repro.check r in
          if res.Differential.mismatches <> [] then
            Alcotest.failf "%s: %s" path
              (Differential.show_mismatch
                 (List.hd res.Differential.mismatches)))
    files

(* ---- repro round-trip ---- *)

let test_repro_roundtrip () =
  let rules = [ Parser.parse "[0-9]+(\\.[0-9]+)?"; Parser.parse "\\." ] in
  let r =
    Repro.v ~chunks:[ 1; 1; 1; 2 ] ~domains:3 ~note:"round trip" rules "1\x004.5"
  in
  match Repro.of_string (Repro.to_string r) with
  | Error msg -> Alcotest.failf "round trip: %s" msg
  | Ok r' ->
      check_string "input" r.Repro.input r'.Repro.input;
      check "chunks" true (r'.Repro.chunks = Some [ 1; 1; 1; 2 ]);
      check "domains" true (r'.Repro.domains = Some 3);
      check "note" true (r'.Repro.note = Some "round trip");
      check_int "rules" (List.length r.Repro.rules) (List.length r'.Repro.rules);
      List.iter2
        (fun a b -> check_string "rule" (Regex.to_string a) (Regex.to_string b))
        r.Repro.rules r'.Repro.rules

let test_repro_malformed () =
  let bad s = match Repro.of_string s with Error _ -> true | Ok _ -> false in
  check "no rules" true (bad "input-hex: 61\n");
  check "no input" true (bad "rule: a\n");
  check "odd hex" true (bad "rule: a\ninput-hex: 6\n");
  check "bad hex digit" true (bad "rule: a\ninput-hex: 6z\n");
  check "bad chunks" true (bad "rule: a\ninput-hex: 6161\nchunks: 1\n");
  check "unknown key" true (bad "rule: a\ninput-hex: 61\nwhat: 1\n");
  check "bad rule" true (bad "rule: [\ninput-hex: 61\n")

(* ---- shrinker ---- *)

let test_shrink_injected_bug () =
  (* the injected engine bug (last token dropped) fails on any input with
     >= 1 token; the shrinker must reach a near-minimal repro *)
  let fails (c : Shrink.candidate) =
    let spec =
      Differential.spec ~domain_counts:[] ~inject_bug:true c.Shrink.rules
        c.Shrink.input
    in
    (Differential.check spec).Differential.mismatches <> []
  in
  let c0 =
    {
      Shrink.rules =
        [ Parser.parse "[a-z]+"; Parser.parse "[0-9]+"; Parser.parse " " ];
      input = "hello 42 worlds 777 end";
    }
  in
  check "starts failing" true (fails c0);
  let cmin, evals = Shrink.minimize ~fails c0 in
  check "still fails" true (fails cmin);
  check "input minimized" true (String.length cmin.Shrink.input <= 2);
  check "rules minimized" true (List.length cmin.Shrink.rules = 1);
  check "spent evals" true (evals > 0)

let test_shrink_preserves_failure () =
  (* a predicate pinning a specific failure offset keeps that offset *)
  let fails (c : Shrink.candidate) =
    let d = Dfa.of_rules c.Shrink.rules in
    match Backtracking.tokens d c.Shrink.input with
    | _, Backtracking.Failed { offset = 2; _ } -> true
    | _ -> false
  in
  let c0 =
    { Shrink.rules = [ Parser.parse "[0-9]+"; Parser.parse "@" ]; input = "12&&&&" }
  in
  check "starts failing" true (fails c0);
  let cmin, _ = Shrink.minimize ~fails c0 in
  check "still fails" true (fails cmin);
  check "shorter or equal" true
    (String.length cmin.Shrink.input <= String.length c0.Shrink.input)

(* ---- driver ---- *)

let small_config =
  {
    Driver.default with
    Driver.seed = 5;
    max_iters = 12;
    max_seconds = 0.;
    max_input_bytes = 48;
    parallel_fraction = 0.;
  }

let test_driver_deterministic () =
  let r1 = Driver.run small_config in
  let r2 = Driver.run small_config in
  check_string "summary" (Driver.summary r1) (Driver.summary r2);
  check_int "iterations" small_config.Driver.max_iters r1.Driver.iterations;
  check_int "found" 0 (List.length r1.Driver.found);
  check "did work" true (r1.Driver.checks > 0)

let test_driver_injected_bug_caught () =
  let tmp = Filename.temp_file "fuzz" ".d" in
  Sys.remove tmp;
  let config =
    { small_config with Driver.inject_bug = true; corpus_dir = Some tmp }
  in
  let r = Driver.run config in
  check "found mismatches" true (r.Driver.found <> []);
  List.iter
    (fun (f : Driver.found) ->
      check_string "subject" "engine" f.Driver.subject;
      check "tiny repro" true (String.length f.Driver.input <= 64);
      match f.Driver.repro_path with
      | None -> Alcotest.fail "no repro written"
      | Some path -> (
          match Repro.load path with
          | Error msg -> Alcotest.failf "%s: %s" path msg
          | Ok repro ->
              let res = Repro.check ~inject_bug:true repro in
              check "repro replays the bug" true
                (res.Differential.mismatches <> [])))
    r.Driver.found;
  (* cleanup *)
  Array.iter (fun f -> Sys.remove (Filename.concat tmp f)) (Sys.readdir tmp);
  Sys.rmdir tmp

let test_report_json () =
  let r = Driver.run small_config in
  let doc = Obs.Json.to_string (Driver.report_to_json r) in
  check "schema tagged" true
    (String.length doc > 0
    &&
    let sub = {|"schema":"streamtok/fuzz-report/v1"|} in
    let rec find i =
      i + String.length sub <= String.length doc
      && (String.sub doc i (String.length sub) = sub || find (i + 1))
    in
    find 0)

let suite =
  [
    Alcotest.test_case "chunking algebra" `Quick test_chunking;
    QCheck_alcotest.to_alcotest prop_stream_any_partition;
    QCheck_alcotest.to_alcotest prop_differential_clean;
    Alcotest.test_case "corpus replay" `Quick test_corpus_replay;
    Alcotest.test_case "repro round-trip" `Quick test_repro_roundtrip;
    Alcotest.test_case "repro malformed" `Quick test_repro_malformed;
    Alcotest.test_case "shrink injected bug" `Quick test_shrink_injected_bug;
    Alcotest.test_case "shrink preserves failure" `Quick
      test_shrink_preserves_failure;
    Alcotest.test_case "driver deterministic" `Quick test_driver_deterministic;
    Alcotest.test_case "driver catches injected bug" `Quick
      test_driver_injected_bug_caught;
    Alcotest.test_case "report json" `Quick test_report_json;
  ]
