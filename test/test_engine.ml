open Streamtok

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compile_exn src =
  match Engine.compile_grammar src with
  | Ok e -> e
  | Error Engine.Unbounded_tnd -> Alcotest.failf "unexpected unbounded: %s" src

let outcome_agrees (b : Backtracking.outcome) (s : Engine.outcome) =
  match (b, s) with
  | Backtracking.Finished, Engine.Finished -> true
  | Backtracking.Failed { offset = o1; _ }, Engine.Failed { offset = o2; _ } ->
      o1 = o2
  | _ -> false

let run_both src input =
  let e = compile_exn src in
  let d = Engine.dfa e in
  let bt, bo = Backtracking.tokens d input in
  let st, so = Engine.tokens e input in
  check
    (Printf.sprintf "tokens %s on %S" src input)
    true (Gen.same_tokens bt st);
  check (Printf.sprintf "outcome %s on %S" src input) true (outcome_agrees bo so);
  (bt, bo)

let test_compile_modes () =
  let e1 = compile_exn "[0-9]+\n[ ]+" in
  check_int "k1 grammar" 1 (Engine.k e1);
  check_int "no TeDFA for k<=1" 0 (Engine.te_states e1);
  let e3 = compile_exn "[0-9]+([eE][+-]?[0-9]+)?\n[ ]+" in
  check_int "k3 grammar" 3 (Engine.k e3);
  check "TeDFA built" true (Engine.te_states e3 > 0);
  check "footprint positive" true (Engine.footprint_bytes e3 > 0)

(* footprint_bytes must be positive in both modes and account for the
   lookahead buffer and mode tables consistently: in TE mode it grows
   monotonically as powerstates materialize (te_states is lazy), and the
   compile-time snapshot matches the engine's own accessor. *)
let test_footprint () =
  let d1 = Dfa.of_grammar "[0-9]+\n[ ]+" in
  (match Engine.compile_timed d1 with
  | Error _ -> Alcotest.fail "unexpected unbounded"
  | Ok (e1, cs) ->
      check "k1 footprint positive" true (Engine.footprint_bytes e1 > 0);
      check "k1 table accounted" true
        (Engine.footprint_bytes e1 > Engine.k1_table_bytes e1);
      check_int "snapshot matches accessor" (Engine.footprint_bytes e1)
        cs.Engine.footprint_bytes;
      let nc = Dfa.num_classes (Engine.dfa e1) in
      check_int "k1_table_bytes = (classes + 1) * states"
        ((nc + 1) * cs.Engine.dfa_states)
        (Engine.k1_table_bytes e1);
      check "classed k1 table below the dense 257 * states" true
        (Engine.k1_table_bytes e1 < 257 * cs.Engine.dfa_states));
  let d3 = Dfa.of_grammar "[0-9]+([eE][+-]?[0-9]+)?\n[ ]+" in
  match Engine.compile d3 with
  | Error _ -> Alcotest.fail "unexpected unbounded"
  | Ok e3 ->
      check "te footprint positive" true (Engine.footprint_bytes e3 > 0);
      check_int "no k1 table in TE mode" 0 (Engine.k1_table_bytes e3);
      let states0 = Engine.te_states e3 in
      let fp0 = Engine.footprint_bytes e3 in
      (* a run materializes more TE powerstates; footprint must follow *)
      ignore
        (Engine.run_string e3 "1e+5 27 3e9 12 " ~emit:(fun ~pos:_ ~len:_ ~rule:_ -> ()));
      let states1 = Engine.te_states e3 in
      let fp1 = Engine.footprint_bytes e3 in
      check "run materialized powerstates" true (states1 > states0);
      check "footprint monotone in te_states" true (fp1 > fp0);
      check_int "growth proportional to states"
        ((fp1 - fp0) / (states1 - states0) * (states1 - states0))
        (fp1 - fp0)

let test_compile_unbounded () =
  match Engine.compile_grammar "a\nb\n(a|b)*c" with
  | Error Engine.Unbounded_tnd -> ()
  | Ok _ -> Alcotest.fail "expected Unbounded_tnd"

let test_example2 () =
  (* the paper's running example *)
  let tokens, outcome = run_both "a\nba*\nc[ab]*" "abaabacabaa" in
  check "finished" true (outcome = Backtracking.Finished);
  check "paper token list" true
    (Gen.same_tokens tokens [ ("a", 0); ("baa", 1); ("ba", 1); ("cabaa", 2) ])

let test_example18 () =
  (* Fig. 5 walkthrough: "12 " for [0-9]+|[ ]+ *)
  let tokens, _ = run_both "[0-9]+\n[ ]+" "12 " in
  check "12 then space" true
    (Gen.same_tokens tokens [ ("12", 0); (" ", 1) ])

let test_example19 () =
  (* Fig. 6 walkthrough: "1.4.." for [0-9]+(\.[0-9]+)?|[.] — K = 2 *)
  let tokens, _ = run_both "[0-9]+(\\.[0-9]+)?\n[.]" "1.4.." in
  check "maximal float first" true
    (Gen.same_tokens tokens [ ("1.4", 0); (".", 1); (".", 1) ])

let test_k0_grammar () =
  let tokens, outcome = run_both "[0-9]\n[ ]" "1 2 3" in
  check_int "five unit tokens" 5 (List.length tokens);
  check "finished" true (outcome = Backtracking.Finished)

let test_eos_boundaries () =
  (* tokens whose maximality is only decided at end of stream *)
  ignore (run_both "[0-9]+(\\.[0-9]+)?\n[ ]+" "12");
  ignore (run_both "[0-9]+(\\.[0-9]+)?\n[ ]+" "12.");
  ignore (run_both "[0-9]+(\\.[0-9]+)?\n[ ]+" "12.5");
  ignore (run_both "[0-9]+([eE][+-]?[0-9]+)?\n[ ]+" "1e");
  ignore (run_both "[0-9]+([eE][+-]?[0-9]+)?\n[ ]+" "1e+");
  ignore (run_both "[0-9]+([eE][+-]?[0-9]+)?\n[ ]+" "1e+5");
  ignore (run_both "abcde\nab" "abcd");
  ignore (run_both "abcde\nab" "abc")

let test_failures () =
  let _, o1 = run_both "[0-9]+\n[ ]+" "12x3" in
  check "fails at x" true
    (match o1 with Backtracking.Failed { offset; _ } -> offset = 2 | _ -> false);
  let _, o2 = run_both "[0-9]+\n[ ]+" "x" in
  check "fails at 0" true
    (match o2 with Backtracking.Failed { offset; _ } -> offset = 0 | _ -> false);
  (* prefix of a token, then EOS: leftover *)
  let _, o3 = run_both "abc\n[ ]" "ab" in
  check "leftover ab" true
    (match o3 with Backtracking.Failed { offset = 0; _ } -> true | _ -> false)

let test_empty_input () =
  let tokens, outcome = run_both "a+\nb" "" in
  check "no tokens" true (tokens = []);
  check "finished" true (outcome = Backtracking.Finished)

let test_input_shorter_than_k () =
  (* stream shorter than the lookahead window *)
  ignore (run_both "[0-9]+([eE][+-]?[0-9]+)?\n[ ]+" "7");
  ignore (run_both "abcdefgh\na" "a");
  ignore (run_both "abcdefgh\na" "ab")

let test_worst_case_correctness () =
  List.iter
    (fun k ->
      let g = Worst_case.grammar k in
      let rules = Grammar.rules g in
      let d = Dfa.of_rules rules in
      let e =
        match Engine.compile d with Ok e -> e | Error _ -> assert false
      in
      List.iter
        (fun n ->
          let input = Worst_case.input n in
          let bt, bo = Backtracking.tokens d input in
          let st, so = Engine.tokens e input in
          check
            (Printf.sprintf "worst-case k=%d n=%d" k n)
            true
            (Gen.same_tokens bt st && outcome_agrees bo so))
        [ 0; 1; k; k + 1; (3 * k) + 2; 50 ])
    [ 1; 2; 3; 7 ]

(* Chunked streaming must agree with the one-shot string runner for every
   chunking of the input. *)
let chunked_tokens e input ~chunk =
  let acc = ref [] in
  let st = Stream_tokenizer.create e ~emit:(fun lex r -> acc := (lex, r) :: !acc) in
  let pos = ref 0 in
  let n = String.length input in
  while !pos < n do
    let len = min chunk (n - !pos) in
    Stream_tokenizer.feed st input !pos len;
    pos := !pos + len
  done;
  let outcome = Stream_tokenizer.finish st in
  (List.rev !acc, outcome)

let test_chunked_all_sizes () =
  let src = "[0-9]+(\\.[0-9]+)?([eE][+-]?[0-9]+)?\n[ \\t\\n]+\n[a-z]+\n[,:]" in
  let e = compile_exn src in
  let d = Engine.dfa e in
  let input = "3.14 foo, 1e-9: bar 12. x 7e" in
  let bt, bo = Backtracking.tokens d input in
  List.iter
    (fun chunk ->
      let ct, co = chunked_tokens e input ~chunk in
      check (Printf.sprintf "chunk=%d tokens" chunk) true (Gen.same_tokens bt ct);
      check (Printf.sprintf "chunk=%d outcome" chunk) true (outcome_agrees bo co))
    [ 1; 2; 3; 5; 7; 16; 1000 ]

let test_stream_tokenizer_misuse () =
  let e = compile_exn "[0-9]+\n[ ]+" in
  let st = Stream_tokenizer.create e ~emit:(fun _ _ -> ()) in
  (match Stream_tokenizer.feed st "abc" 1 5 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "bad bounds accepted");
  Stream_tokenizer.feed_string st "12";
  let o1 = Stream_tokenizer.finish st in
  let o2 = Stream_tokenizer.finish st in
  check "finish idempotent" true (o1 = o2)

let test_stream_failure_stops () =
  let e = compile_exn "[0-9]+\n[ ]+" in
  let count = ref 0 in
  let st = Stream_tokenizer.create e ~emit:(fun _ _ -> incr count) in
  Stream_tokenizer.feed_string st "12 x";
  Stream_tokenizer.feed_string st " 34 56 ";
  check "failed flag" true (Stream_tokenizer.failed st);
  (match Stream_tokenizer.finish st with
  | Engine.Failed { offset; _ } -> check_int "offset" 3 offset
  | Engine.Finished -> Alcotest.fail "expected failure");
  check_int "tokens before failure" 2 !count

let test_bytes_fed () =
  let e = compile_exn "[0-9]+\n[ ]+" in
  let st = Stream_tokenizer.create e ~emit:(fun _ _ -> ()) in
  Stream_tokenizer.feed_string st "123 ";
  Stream_tokenizer.feed_string st "456";
  check_int "bytes fed" 7 (Stream_tokenizer.bytes_fed st)

(* The big differential property: on random grammars with bounded TND,
   StreamTok ≡ backtracking, both as string runner and chunked. *)
let prop_streamtok_equals_backtracking =
  QCheck.Test.make ~count:400 ~name:"StreamTok ≡ backtracking (random)"
    Gen.grammar_input_arb (fun (rules, input) ->
      let d = Dfa.of_rules rules in
      match Engine.compile d with
      | Error Engine.Unbounded_tnd -> QCheck.assume_fail ()
      | Ok e ->
          let bt, bo = Backtracking.tokens d input in
          let st, so = Engine.tokens e input in
          Gen.same_tokens bt st && outcome_agrees bo so)

let prop_chunked_equals_string =
  QCheck.Test.make ~count:200 ~name:"chunked ≡ one-shot (random)"
    (QCheck.pair Gen.grammar_input_arb QCheck.small_nat)
    (fun ((rules, input), chunk_seed) ->
      let d = Dfa.of_rules rules in
      match Engine.compile d with
      | Error Engine.Unbounded_tnd -> QCheck.assume_fail ()
      | Ok e ->
          let chunk = 1 + (chunk_seed mod 7) in
          let st, so = Engine.tokens e input in
          let ct, co = chunked_tokens e input ~chunk in
          Gen.same_tokens st ct
          &&
          (match (so, co) with
          | Engine.Finished, Engine.Finished -> true
          | Engine.Failed { offset = o1; _ }, Engine.Failed { offset = o2; _ }
            ->
              o1 = o2
          | _ -> false))

(* Alphabet-compression parity battery (the tentpole's oracle): for seeded
   random grammars — full-byte random, corpus-sampled and corpus-mutated —
   the classed engine must be byte-identical to the retained dense
   reference path ([~classes:false], identity classmap) on token-dense,
   near-miss and uniform full-byte inputs. Deterministic (SplitMix64
   seeded), ≥1k grammar×input cases. *)
let token_dense_input rng dfa =
  Fuzz.Gen.token_dense rng dfa ~target_len:(1 + Prng.int rng 200)

let test_classed_dense_parity () =
  let rng = Prng.create 0xC1A55E5L in
  let cases = ref 0 in
  let grammars = ref 0 in
  while !cases < 1000 do
    let rules =
      match Prng.int rng 3 with
      | 0 -> Fuzz.Gen.grammar rng ~cls:Fuzz.Gen.charset_bytes
      | 1 -> Grammar_corpus.sample rng
      | _ ->
          let r = Grammar_corpus.sample rng in
          Grammar_corpus.mutate rng r
    in
    let dc = Dfa.of_rules rules in
    let dd = Dfa.of_rules ~classes:false rules in
    check "dense reference keeps 256 columns" true (Dfa.num_classes dd = 256);
    check "classed has no more columns than dense" true
      (Dfa.num_classes dc <= 256);
    match (Engine.compile dc, Engine.compile dd) with
    | Error Engine.Unbounded_tnd, Error Engine.Unbounded_tnd -> ()
    | Error _, Ok _ | Ok _, Error _ ->
        Alcotest.fail "classed/dense disagree on max-TND boundedness"
    | Ok ec, Ok ed ->
        incr grammars;
        check_int "same lookahead k" (Engine.k ed) (Engine.k ec);
        let dense = token_dense_input rng dc in
        let inputs =
          [
            dense;
            Fuzz.Gen.near_miss rng dense;
            Fuzz.Gen.uniform rng ~alphabet:Fuzz.Gen.byte_alphabet ~max_len:200;
          ]
        in
        List.iter
          (fun input ->
            let tc, oc = Engine.tokens ec input in
            let td, od = Engine.tokens ed input in
            if not (Gen.same_tokens td tc && Engine.outcome_equal od oc) then
              Alcotest.failf "classed/dense mismatch on %S (grammar #%d)"
                input !grammars;
            incr cases)
          inputs
  done;
  check "ran a spread of grammars" true (!grammars >= 100)

(* Same battery against the self-loop acceleration: the skip-loop engine
   must be byte-identical to the [~accel:false] reference build. *)
let test_accel_noaccel_parity () =
  let rng = Prng.create 0xACCE17EDL in
  let cases = ref 0 in
  let grammars = ref 0 in
  while !cases < 1000 do
    let rules =
      match Prng.int rng 3 with
      | 0 -> Fuzz.Gen.grammar rng ~cls:Fuzz.Gen.charset_bytes
      | 1 -> Grammar_corpus.sample rng
      | _ ->
          let r = Grammar_corpus.sample rng in
          Grammar_corpus.mutate rng r
    in
    let da = Dfa.of_rules rules in
    let dp = Dfa.of_rules ~accel:false rules in
    check "reference build has accel off" false (Dfa.accel_enabled dp);
    match (Engine.compile da, Engine.compile dp) with
    | Error Engine.Unbounded_tnd, Error Engine.Unbounded_tnd -> ()
    | Error _, Ok _ | Ok _, Error _ ->
        Alcotest.fail "accel/noaccel disagree on max-TND boundedness"
    | Ok ea, Ok ep ->
        incr grammars;
        let dense = token_dense_input rng da in
        let inputs =
          [
            dense;
            Fuzz.Gen.near_miss rng dense;
            Fuzz.Gen.uniform rng ~alphabet:Fuzz.Gen.byte_alphabet ~max_len:200;
          ]
        in
        List.iter
          (fun input ->
            let ta, oa = Engine.tokens ea input in
            let tp, op = Engine.tokens ep input in
            if not (Gen.same_tokens tp ta && Engine.outcome_equal op oa) then
              Alcotest.failf "accel/noaccel mismatch on %S (grammar #%d)"
                input !grammars;
            incr cases)
          inputs
  done;
  check "ran a spread of grammars" true (!grammars >= 100)

(* StreamTok takes exactly one DFA step per input byte: its cost is O(n).
   We verify the linear-time claim structurally: the backtracking runner on
   the worst-case family takes ≥ k/2 × n steps while StreamTok's step count
   is n by construction (no position ever revisited — checked by the token
   equality above), so here we just pin the backtracking blowup. *)
let test_backtracking_blowup () =
  let n = 2000 in
  let input = Worst_case.input n in
  List.iter
    (fun k ->
      let d = Dfa.of_rules (Grammar.rules (Worst_case.grammar k)) in
      let steps = Backtracking.steps d input in
      check
        (Printf.sprintf "flex steps grow with k=%d" k)
        true
        (steps >= (k / 2) * (n / 2)))
    [ 4; 16; 64 ]

(* Emitted lexemes concatenate back to the consumed prefix of the input,
   and the leftover (if any) is exactly the unconsumed suffix. *)
let prop_lexemes_reconstruct_input =
  QCheck.Test.make ~count:300 ~name:"lexemes ++ leftover = input"
    Gen.grammar_input_arb (fun (rules, input) ->
      let d = Dfa.of_rules rules in
      match Engine.compile d with
      | Error Engine.Unbounded_tnd -> QCheck.assume_fail ()
      | Ok e ->
          let toks, o = Engine.tokens e input in
          let consumed = String.concat "" (List.map fst toks) in
          (match o with
          | Engine.Finished -> consumed = input
          | Engine.Failed { offset; pending } ->
              String.length consumed = offset
              && consumed = String.sub input 0 offset
              && pending = String.sub input offset (String.length input - offset)))

(* The same invariant for the reference tokenizer. *)
let prop_backtracking_reconstructs =
  QCheck.Test.make ~count:300 ~name:"backtracking lexemes reconstruct"
    Gen.grammar_input_arb (fun (rules, input) ->
      let d = Dfa.of_rules rules in
      let toks, o = Backtracking.tokens d input in
      let consumed = String.concat "" (List.map fst toks) in
      match o with
      | Backtracking.Finished -> consumed = input
      | Backtracking.Failed { offset; _ } ->
          consumed = String.sub input 0 offset)

let suite =
  [
    Alcotest.test_case "compile modes" `Quick test_compile_modes;
    Alcotest.test_case "footprint accounting" `Quick test_footprint;
    Alcotest.test_case "unbounded rejected" `Quick test_compile_unbounded;
    Alcotest.test_case "Example 2" `Quick test_example2;
    Alcotest.test_case "Example 18 (Fig. 5)" `Quick test_example18;
    Alcotest.test_case "Example 19 (Fig. 6)" `Quick test_example19;
    Alcotest.test_case "k=0 grammar" `Quick test_k0_grammar;
    Alcotest.test_case "EOS boundaries" `Quick test_eos_boundaries;
    Alcotest.test_case "failure positions" `Quick test_failures;
    Alcotest.test_case "empty input" `Quick test_empty_input;
    Alcotest.test_case "input shorter than K" `Quick test_input_shorter_than_k;
    Alcotest.test_case "worst-case family" `Quick test_worst_case_correctness;
    Alcotest.test_case "chunked all sizes" `Quick test_chunked_all_sizes;
    Alcotest.test_case "stream misuse" `Quick test_stream_tokenizer_misuse;
    Alcotest.test_case "stream failure" `Quick test_stream_failure_stops;
    Alcotest.test_case "bytes_fed" `Quick test_bytes_fed;
    Alcotest.test_case "backtracking blowup" `Quick test_backtracking_blowup;
    Alcotest.test_case "classed ≡ dense (1k seeded)" `Quick
      test_classed_dense_parity;
    Alcotest.test_case "accel ≡ noaccel (1k seeded)" `Quick
      test_accel_noaccel_parity;
    QCheck_alcotest.to_alcotest prop_streamtok_equals_backtracking;
    QCheck_alcotest.to_alcotest prop_lexemes_reconstruct_input;
    QCheck_alcotest.to_alcotest prop_backtracking_reconstructs;
    QCheck_alcotest.to_alcotest prop_chunked_equals_string;
  ]
