(* The serving subsystem, tested without a single real socket: wire
   round-trips and adversarial re-chunking at the frame layer, then full
   session lifecycles (parity with the batch engine, cache sharing, idle
   eviction, capacity rejection, backpressure, FLUSH reset, lexical and
   protocol failures) driven through the deterministic loopback
   transport. *)

open Streamtok
module W = Serve.Wire
module SV = Serve.Server
module LB = Serve.Loopback

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- wire round-trips ---- *)

let gen_bytes = QCheck.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 200))

(* OPENED payload values are line-oriented: anything but '\n'. *)
let gen_line =
  QCheck.Gen.(
    string_size
      ~gen:(map (fun c -> if c = '\n' then ' ' else c) printable)
      (int_bound 30))

let gen_format = QCheck.Gen.oneofl [ W.Json; W.Prom ]

let gen_request =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> W.Open s) gen_bytes;
        map (fun s -> W.Feed s) gen_bytes;
        return W.Flush;
        return W.Close;
        map (fun f -> W.Stats f) gen_format;
      ])

let gen_reply =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun grammar k rules -> W.Opened { grammar; k; cached = k mod 2 = 0; rules })
          gen_line (int_bound 40)
          (list_size (int_bound 6) gen_line);
        map
          (fun toks -> W.Tokens toks)
          (list_size (int_bound 8) (pair gen_bytes (int_bound 100)));
        map3
          (fun ok offset pending -> W.Pending { ok; offset; pending })
          bool (int_bound 1_000_000) gen_bytes;
        map3
          (fun code retryable message -> W.Error { code; retryable; message })
          (oneofl [ W.Protocol; W.Bad_grammar; W.Capacity; W.Lexical; W.Shutting_down ])
          bool gen_bytes;
        map2 (fun format body -> W.Metrics { format; body }) gen_format gen_bytes;
      ])

let prop_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"wire: request frame round-trip"
    (QCheck.make gen_request) (fun req ->
      let b = Buffer.create 64 in
      W.encode_request b req;
      match W.decode_all (Buffer.contents b) with
      | Ok [ f ] -> W.request_of_frame f = Ok req
      | _ -> false)

let prop_reply_roundtrip =
  QCheck.Test.make ~count:500 ~name:"wire: reply frame round-trip"
    (QCheck.make gen_reply) (fun reply ->
      let b = Buffer.create 64 in
      W.encode_reply b reply;
      match W.decode_all (Buffer.contents b) with
      | Ok [ f ] -> W.reply_of_frame f = Ok reply
      | _ -> false)

(* A frame stream split at adversarial byte boundaries (reusing the fuzz
   chunking strategies) must decode to exactly the same frames. *)
let prop_chunked_decode =
  QCheck.Test.make ~count:100 ~name:"wire: chunk-split decode identity"
    QCheck.(
      make
        Gen.(
          pair (list_size (int_range 1 10) gen_request) (int_range 0 9999)))
    (fun (reqs, seed) ->
      let b = Buffer.create 256 in
      List.iter (W.encode_request b) reqs;
      let stream = Buffer.contents b in
      let reference =
        match W.decode_all stream with Ok fs -> fs | Error _ -> assert false
      in
      let rng = Prng.create (Int64.of_int seed) in
      List.for_all
        (fun (_name, chunking) ->
          let d = W.Decoder.create () in
          let frames = ref [] in
          let ok = ref true in
          let pos = ref 0 in
          List.iter
            (fun n ->
              W.Decoder.feed d stream ~pos:!pos ~len:n;
              pos := !pos + n;
              let continue = ref true in
              while !continue do
                match W.Decoder.next d with
                | W.Decoder.Frame f -> frames := f :: !frames
                | W.Decoder.Need_more -> continue := false
                | W.Decoder.Corrupt _ ->
                    ok := false;
                    continue := false
              done)
            chunking;
          !ok && List.rev !frames = reference)
        (Fuzz.Chunking.standard ~rng ~delay:5 (String.length stream)))

(* ---- loopback session lifecycles ---- *)

let fake_clock start =
  let now = ref start in
  ((fun () -> !now), fun t -> now := t)

let config ?(max_sessions = 8) ?(idle_timeout = 0.) ?(max_out_bytes = 1 lsl 20)
    ?(out_frame_bytes = 1 lsl 20) clock =
  {
    SV.default_config with
    max_sessions;
    idle_timeout;
    max_out_bytes;
    out_frame_bytes;
    clock;
  }

let tokens_of replies =
  List.concat_map (function W.Tokens ts -> ts | _ -> []) replies

let json_engine =
  lazy
    (match Engine.compile (Grammar.dfa Formats.json) with
    | Ok e -> e
    | Error _ -> assert false)

let test_lifecycle_parity () =
  let clock, _ = fake_clock 0. in
  let lb = LB.create ~config:(config clock) () in
  let input = Gen_data.json ~seed:11L ~target_bytes:4000 () in
  let c = LB.connect lb in
  LB.send c (W.Open "json");
  (* odd-sized FEEDs, token boundaries nowhere near chunk edges *)
  let pos = ref 0 in
  while !pos < String.length input do
    let n = min 37 (String.length input - !pos) in
    LB.send c (W.Feed (String.sub input !pos n));
    pos := !pos + n
  done;
  LB.send c W.Flush;
  LB.send c W.Close;
  LB.run lb;
  let replies = LB.replies c in
  (match replies with
  | W.Opened { grammar; cached; k; _ } :: _ ->
      check "grammar echoed" true (grammar = "json");
      check "first open not cached" false cached;
      check_int "k" (Engine.k (Lazy.force json_engine)) k
  | _ -> Alcotest.fail "expected OPENED first");
  (match List.rev replies with
  | W.Pending { ok; offset; pending } :: _ ->
      check "clean flush" true (ok && pending = "");
      check_int "offset = bytes fed" (String.length input) offset
  | _ -> Alcotest.fail "expected PENDING last");
  let reference, outcome = Engine.tokens (Lazy.force json_engine) input in
  check "batch outcome finished" true (outcome = Engine.Finished);
  check "tokens ≡ batch engine" true (tokens_of replies = reference);
  check "connection closed after CLOSE" true (LB.closed c)

let test_engine_cache_sharing () =
  let clock, _ = fake_clock 0. in
  let lb = LB.create ~config:(config clock) () in
  let open_one () =
    let c = LB.connect lb in
    LB.send c (W.Open "json");
    LB.run lb;
    match LB.replies c with
    | [ W.Opened { cached; _ } ] -> cached
    | _ -> Alcotest.fail "expected OPENED"
  in
  check "first compile not cached" false (open_one ());
  check "second session shares engine" true (open_one ());
  check "third session shares engine" true (open_one ());
  let cache = SV.cache (LB.server lb) in
  check_int "exactly one compile for N sessions" 1 (Engine_cache.compiles cache);
  check_int "two hits" 2 (Engine_cache.hits cache);
  check_int "three live sessions" 3 (SV.sessions (LB.server lb))

(* The compile flags are part of the cache key: the same grammar under
   default and [~accel:false] builds must not share an entry (a session
   handed the wrong variant would silently lose the skip loops — or worse,
   a reference build would silently gain them). *)
let test_engine_cache_flag_keys () =
  let rules = Streamtok.Grammar.rules Streamtok.Formats.csv in
  let cache = Engine_cache.create () in
  check "keys differ across accel flag" false
    (Engine_cache.key_of_rules rules
    = Engine_cache.key_of_rules ~accel:false rules);
  check "keys differ across classes flag" false
    (Engine_cache.key_of_rules rules
    = Engine_cache.key_of_rules ~classes:false rules);
  let get ?classes ?accel () =
    match Engine_cache.find_or_compile cache ?classes ?accel rules with
    | Ok e -> e
    | Error _ -> Alcotest.fail "csv must compile"
  in
  let ea = get () in
  let ep = get ~accel:false () in
  check_int "two distinct compiles" 2 (Engine_cache.compiles cache);
  check "default build accelerated" true
    (Streamtok.Dfa.accel_enabled (Streamtok.Engine.dfa ea));
  check "reference build not accelerated" false
    (Streamtok.Dfa.accel_enabled (Streamtok.Engine.dfa ep));
  ignore (get ());
  ignore (get ~accel:false ());
  check_int "both variants hit their own entry" 2 (Engine_cache.hits cache);
  check_int "still two compiles" 2 (Engine_cache.compiles cache)

let test_idle_eviction () =
  let clock, set = fake_clock 0. in
  let lb = LB.create ~config:(config ~idle_timeout:30. clock) () in
  let busy = LB.connect lb in
  let idle = LB.connect lb in
  LB.send busy (W.Open "json");
  LB.send idle (W.Open "json");
  LB.run lb;
  ignore (LB.replies busy);
  ignore (LB.replies idle);
  set 29.;
  LB.send busy (W.Feed "{}");
  LB.run lb;
  set 45.;
  (* busy fed at t=29 (idle 16s), idle last active at t=0 (idle 45s) *)
  LB.tick lb;
  LB.run lb;
  check "idle session evicted" true (LB.closed idle);
  check "busy session survives" false (LB.closed busy);
  (match LB.replies idle with
  | [ W.Error { code = W.Shutting_down; retryable; _ } ] ->
      check "eviction is retryable" true retryable
  | _ -> Alcotest.fail "expected retryable eviction error");
  check_int "one live session left" 1 (SV.sessions (LB.server lb))

let test_capacity_rejection () =
  let clock, _ = fake_clock 0. in
  let lb = LB.create ~config:(config ~max_sessions:1 clock) () in
  let a = LB.connect lb in
  LB.send a (W.Open "json");
  LB.run lb;
  let b = LB.connect lb in
  LB.run lb;
  check "over-capacity connection closed" true (LB.closed b);
  (match LB.replies b with
  | [ W.Error { code = W.Capacity; retryable; _ } ] ->
      check "capacity rejection is retryable" true retryable
  | _ -> Alcotest.fail "expected retryable capacity error");
  (* a slot frees up once a session closes *)
  LB.send a W.Close;
  LB.run lb;
  let c = LB.connect lb in
  LB.send c (W.Open "json");
  LB.run lb;
  check "slot reusable after close" true
    (match LB.replies c with [ W.Opened _ ] -> true | _ -> false)

let test_backpressure () =
  (* Direct Server contract: with a tiny output budget, an unread reply
     queue must turn off wants_read, and reading resumes once the
     transport drains it. *)
  let clock, _ = fake_clock 0. in
  let srv = SV.create ~config:(config ~max_out_bytes:256 clock) () in
  let id = SV.on_connect srv in
  let b = Buffer.create 4096 in
  W.encode_request b (W.Open "@[0-9];[ ]+");
  (* every digit is its own token: plenty of reply bytes *)
  W.encode_request b (W.Feed (String.concat " " (List.init 300 (fun _ -> "7"))));
  W.encode_request b (W.Flush);
  let s = Buffer.to_bytes b in
  SV.on_data srv id s ~pos:0 ~len:(Bytes.length s);
  check "queue over budget" true (SV.out_pending srv id > 256);
  check "backpressure: reading off" false (SV.wants_read srv id);
  while SV.out_pending srv id > 0 do
    let _, _, len = SV.out_view srv id in
    SV.out_consume srv id (min 64 len)
  done;
  check "reading resumes when drained" true (SV.wants_read srv id)

let test_flush_resets_stream () =
  let clock, _ = fake_clock 0. in
  let lb = LB.create ~config:(config clock) () in
  let c = LB.connect lb in
  LB.send c (W.Open "@[a-z]+;[ ]+");
  LB.send c (W.Feed "foo bar");
  LB.send c W.Flush;
  LB.send c (W.Feed "baz");
  LB.send c W.Flush;
  LB.send c W.Close;
  LB.run lb;
  let replies = LB.replies c in
  check "two streams, one session" true
    (tokens_of replies = [ ("foo", 0); (" ", 1); ("bar", 0); ("baz", 0) ]);
  let pendings =
    List.filter_map
      (function W.Pending { ok; offset; _ } -> Some (ok, offset) | _ -> None)
      replies
  in
  (* second stream's offset counts from its own start *)
  check "offsets restart per stream" true (pendings = [ (true, 7); (true, 3) ])

let test_lexical_failure () =
  let clock, _ = fake_clock 0. in
  let lb = LB.create ~config:(config clock) () in
  let c = LB.connect lb in
  LB.send c (W.Open "@[a-z]+");
  LB.send c (W.Feed "abc123");
  LB.send c (W.Feed "more-after-failure");
  LB.send c W.Flush;
  LB.send c W.Close;
  LB.run lb;
  let replies = LB.replies c in
  check "lexical error reported, not fatal" true
    (List.exists
       (function
         | W.Error { code = W.Lexical; retryable = false; _ } -> true
         | _ -> false)
       replies);
  (match
     List.find_opt (function W.Pending _ -> true | _ -> false) replies
   with
  | Some (W.Pending { ok; offset; _ }) ->
      check "flush reports failure" false ok;
      check_int "failure offset" 3 offset
  | _ -> Alcotest.fail "expected PENDING");
  check "feeds after failure dropped" true
    (List.length
       (List.filter (function W.Tokens _ -> true | _ -> false) replies)
    <= 1);
  check "session closed via CLOSE" true (LB.closed c)

let test_protocol_errors () =
  let clock, _ = fake_clock 0. in
  let lb = LB.create ~config:(config clock) () in
  (* FEED before OPEN is fatal *)
  let a = LB.connect lb in
  LB.send a (W.Feed "x");
  LB.run lb;
  check "feed-before-open closes" true (LB.closed a);
  (match LB.replies a with
  | [ W.Error { code = W.Protocol; retryable = false; _ } ] -> ()
  | _ -> Alcotest.fail "expected fatal protocol error");
  (* an oversize length prefix is corrupt before any allocation *)
  let b = LB.connect lb in
  LB.send_raw b "\xff\xff\xff\xff\x01";
  LB.run lb;
  check "corrupt frame closes" true (LB.closed b);
  (* a bad grammar is rejected with the resolver's message *)
  let c = LB.connect lb in
  LB.send c (W.Open "@[a-z");
  LB.run lb;
  check "bad grammar closes" true (LB.closed c);
  (match LB.replies c with
  | [ W.Error { code = W.Bad_grammar; _ } ] -> ()
  | _ -> Alcotest.fail "expected bad-grammar error");
  (* the daemon itself is still healthy *)
  let d = LB.connect lb in
  LB.send d (W.Open "json");
  LB.run lb;
  check "server healthy after errors" true
    (match LB.replies d with [ W.Opened _ ] -> true | _ -> false)

let test_drain () =
  let clock, _ = fake_clock 0. in
  let lb = LB.create ~config:(config clock) () in
  let a = LB.connect lb in
  LB.send a (W.Open "json");
  LB.run lb;
  ignore (LB.replies a);
  SV.drain (LB.server lb);
  LB.run lb;
  check "live session drained" true (LB.closed a);
  (match LB.replies a with
  | [ W.Error { code = W.Shutting_down; retryable = true; _ } ] -> ()
  | _ -> Alcotest.fail "expected retryable shutdown error");
  let b = LB.connect lb in
  LB.run lb;
  check "new connections rejected while draining" true (LB.closed b);
  check_int "no live conns left" 0 (SV.live_conns (LB.server lb))

(* ---- zero-copy decoder views ---- *)

(* Drive the view API under one chunking and collect (tag, payload copy)
   pairs; [Corrupt]/[View_corrupt] maps to None. *)
let decode_views_under chunking stream =
  let d = W.Decoder.create () in
  let frames = ref [] in
  let ok = ref true in
  let pos = ref 0 in
  List.iter
    (fun n ->
      W.Decoder.feed d stream ~pos:!pos ~len:n;
      pos := !pos + n;
      let continue = ref true in
      while !continue do
        match W.Decoder.next_view d with
        | W.Decoder.View v ->
            frames := (v.W.Decoder.vtag, W.Decoder.view_string v) :: !frames
        | W.Decoder.View_need_more -> continue := false
        | W.Decoder.View_corrupt _ ->
            ok := false;
            continue := false
      done)
    chunking;
  if !ok then Some (List.rev !frames, W.Decoder.copies d) else None

(* The tentpole contract: under ANY chunk split — byte-at-a-time, random,
   straddling the compaction boundary — the payload views are
   byte-identical to the old compact-and-copy decode, and a whole-stream
   feed (no frame ever straddles a feed) performs zero copies. *)
let prop_view_decode_identity =
  QCheck.Test.make ~count:100 ~name:"wire: zero-copy views ≡ copying decode"
    QCheck.(
      make
        Gen.(
          pair (list_size (int_range 1 10) gen_request) (int_range 0 9999)))
    (fun (reqs, seed) ->
      let b = Buffer.create 256 in
      List.iter (W.encode_request b) reqs;
      let stream = Buffer.contents b in
      let reference =
        match W.decode_all stream with
        | Ok fs -> List.map (fun f -> (f.W.tag, f.W.payload)) fs
        | Error _ -> assert false
      in
      let rng = Prng.create (Int64.of_int seed) in
      let whole_ok =
        match decode_views_under [ String.length stream ] stream with
        | Some (frames, copies) -> frames = reference && copies = 0
        | None -> false
      in
      whole_ok
      && List.for_all
           (fun (_name, chunking) ->
             match decode_views_under chunking stream with
             | Some (frames, _) -> frames = reference
             | None -> false)
           (Fuzz.Chunking.standard ~rng ~delay:5 (String.length stream)))

let test_view_straddle_compaction () =
  (* A payload bigger than the decoder's initial 4 KiB buffer, delivered
     in two feeds: the carried partial frame forces a grow/compact blit,
     which the copies counter must report — and the view must still be
     byte-identical. *)
  let payload = String.init 6000 (fun i -> Char.chr (i land 0xff)) in
  let b = Buffer.create 8192 in
  W.encode_request b (W.Feed payload);
  let stream = Buffer.contents b in
  let d = W.Decoder.create () in
  let half = String.length stream / 2 in
  W.Decoder.feed d stream ~pos:0 ~len:half;
  check "partial frame: need more" true (W.Decoder.next_view d = W.Decoder.View_need_more);
  W.Decoder.feed d stream ~pos:half ~len:(String.length stream - half);
  (match W.Decoder.next_view d with
  | W.Decoder.View v ->
      check_int "tag" 0x02 v.W.Decoder.vtag;
      check "payload identical across straddle" true
        (W.Decoder.view_string v = payload)
  | _ -> Alcotest.fail "expected a frame");
  check "straddle was copied (counted)" true (W.Decoder.copies d > 0);
  (* Views of one feed batch stay valid until the next feed: pull both
     frames of a single feed, then read them. *)
  let b = Buffer.create 64 in
  W.encode_request b (W.Feed "alpha");
  W.encode_request b (W.Feed "beta");
  let s = Buffer.contents b in
  let d = W.Decoder.create () in
  W.Decoder.feed_string d s;
  let v1 =
    match W.Decoder.next_view d with
    | W.Decoder.View v -> v
    | _ -> Alcotest.fail "frame 1"
  in
  let v2 =
    match W.Decoder.next_view d with
    | W.Decoder.View v -> v
    | _ -> Alcotest.fail "frame 2"
  in
  check "both views of the batch readable" true
    (W.Decoder.view_string v1 = "alpha" && W.Decoder.view_string v2 = "beta");
  check_int "no copies on whole-frame feeds" 0 (W.Decoder.copies d)

(* ---- FEED coalescing ---- *)

let counter_value srv name =
  let metrics = Obs.Metrics.Registry.metrics (SV.stats_registry srv) in
  match List.find_opt (fun m -> m.Obs.Metrics.name = name) metrics with
  | Some { Obs.Metrics.kind = Obs.Metrics.Counter c; _ } ->
      Obs.Metrics.Counter.value c
  | _ -> Alcotest.fail (Printf.sprintf "no counter %s" name)

let grammar_engine spec =
  match Registry.resolve spec with
  | Error msg -> Alcotest.fail ("no grammar " ^ spec ^ ": " ^ msg)
  | Ok g -> (
      match Engine.compile (Grammar.dfa g) with
      | Ok e -> e
      | Error _ -> Alcotest.fail ("engine compile failed for " ^ spec))

(* One session fed [input] under the given FEED split; everything is
   queued up front, so with [deliver_each = false] the whole burst lands
   in one on_data call and the server coalesces it into one batch. *)
let serve_tokens ?(deliver_each = false) lb grammar input split =
  let c = LB.connect lb in
  LB.send c (W.Open grammar);
  if deliver_each then LB.run lb;
  let pos = ref 0 in
  List.iter
    (fun n ->
      if n > 0 then LB.send_feed_sub c input ~pos:!pos ~len:n;
      pos := !pos + n;
      if deliver_each then LB.run lb)
    split;
  LB.send c W.Flush;
  LB.send c W.Close;
  LB.run lb;
  let replies = LB.replies c in
  (match List.rev replies with
  | W.Pending { ok; _ } :: _ -> check "clean flush" true ok
  | _ -> Alcotest.fail "expected PENDING last");
  tokens_of replies

let test_coalescing_parity () =
  (* N FEED frames coalesced into one batch must produce the exact token
     stream of N separately delivered feeds — and of the batch engine —
     across the golden grammar corpus and seeded random splits. *)
  let rng = Prng.create 0x5EEDL in
  List.iter
    (fun name ->
      let gen =
        match Gen_data.by_name name with
        | Some g -> g
        | None -> Alcotest.fail ("no generator " ^ name)
      in
      let input = gen ~seed:7L ~target_bytes:3000 () in
      let reference, outcome = Engine.tokens (grammar_engine name) input in
      check (name ^ ": batch engine finished") true (outcome = Engine.Finished);
      List.iter
        (fun split ->
          let clock, _ = fake_clock 0. in
          let lb = LB.create ~config:(config clock) () in
          let coalesced = serve_tokens lb name input split in
          check (name ^ ": coalesced ≡ batch engine") true
            (coalesced = reference);
          (* the burst really was coalesced: many FEEDs, fewer batches *)
          let srv = LB.server lb in
          let feeds = counter_value srv "feeds" in
          let batches = counter_value srv "feed_batches" in
          if feeds > 1 then
            check (name ^ ": burst coalesced") true (batches < feeds);
          let lb2 = LB.create ~config:(config clock) () in
          let separate =
            serve_tokens ~deliver_each:true lb2 name input split
          in
          check (name ^ ": separate feeds ≡ coalesced") true
            (separate = coalesced))
        [
          Fuzz.Chunking.bytes 37 (String.length input);
          Fuzz.Chunking.random rng (String.length input);
        ])
    [ "json"; "csv"; "yaml"; "fasta" ]

let test_backpressure_mid_batch () =
  (* Backpressure must engage mid-coalesced-batch: a burst of FEEDs whose
     token output blows the out-queue budget turns wants_read off while
     client bytes are still queued — and a tiny out_frame_bytes splits the
     batch into several TOKENS frames without changing the stream. *)
  let clock, _ = fake_clock 0. in
  let lb =
    LB.create
      ~config:(config ~max_out_bytes:256 ~out_frame_bytes:128 clock) ()
  in
  let srv = LB.server lb in
  let c = LB.connect lb in
  LB.send c (W.Open "@[0-9];[ ]+");
  LB.run lb;
  let input = String.concat " " (List.init 400 (fun _ -> "7")) in
  let pos = ref 0 in
  while !pos < String.length input do
    let n = min 40 (String.length input - !pos) in
    LB.send_feed_sub c input ~pos:!pos ~len:n;
    pos := !pos + n
  done;
  (* deliver roughly half the burst in one on_data: one coalesced batch,
     reply bytes >> max_out_bytes *)
  ignore (LB.step ~chunk:((5 + 40) * 10) lb : bool);
  check "client bytes still queued" true (LB.unsent c > 0);
  check "backpressure engaged mid-batch" false
    (SV.wants_read srv (LB.conn_id c));
  (* parity is unaffected: drain everything and compare token streams —
     counting TOKENS frames, which the 128-byte cap must have split *)
  LB.send c W.Flush;
  LB.send c W.Close;
  let frames = ref 0 in
  let toks = ref [] in
  let continue = ref true in
  while !continue do
    if not (LB.step lb) then continue := false;
    LB.drain_views c (fun v ->
        if v.W.Decoder.vtag = W.tag_tokens then begin
          incr frames;
          match
            W.iter_tokens_view v (fun ~rule ~buf ~pos ~len ->
                toks := (Bytes.sub_string buf pos len, rule) :: !toks)
          with
          | Ok _ -> ()
          | Error msg -> Alcotest.fail msg
        end)
  done;
  check "batch split into multiple TOKENS frames" true (!frames > 1);
  let reference, _ = Engine.tokens (grammar_engine "@[0-9];[ ]+") input in
  check "tokens ≡ batch engine despite backpressure" true
    (List.rev !toks = reference)

let test_decoder_copies_stat () =
  (* Straddle-free runs (whole frames per delivery) must report exactly
     zero decoder copies; byte-dribbled deliveries (every header and
     payload straddles) must report some. *)
  let clock, _ = fake_clock 0. in
  let lb = LB.create ~config:(config clock) () in
  let srv = LB.server lb in
  let c = LB.connect lb in
  LB.send c (W.Open "json");
  let input = Gen_data.json ~seed:3L ~target_bytes:5000 () in
  let pos = ref 0 in
  while !pos < String.length input do
    let n = min 500 (String.length input - !pos) in
    LB.send_feed_sub c input ~pos:!pos ~len:n;
    pos := !pos + n
  done;
  LB.send c W.Flush;
  LB.send c W.Close;
  LB.run lb;
  ignore (LB.replies c : W.reply list);
  check_int "straddle-free run: zero decoder copies" 0
    (SV.decoder_copies srv);
  check_int "exported as a counter" 0 (counter_value srv "decoder_copies");
  (* one frame bigger than the decoder's 4 KiB initial buffer, delivered
     in 1000-byte slices: the partial frame is carried across feeds until
     the buffer must grow with live bytes — a counted copy. The count
     must also survive the connection teardown (closed conns included). *)
  let d = LB.connect lb in
  LB.send d (W.Open "json");
  LB.send_feed_sub d input ~pos:0 ~len:(String.length input);
  LB.send d W.Flush;
  LB.send d W.Close;
  LB.run ~chunk:1000 lb;
  ignore (LB.replies d : W.reply list);
  check "straddled run counts copies" true (SV.decoder_copies srv > 0);
  check "closed conns keep their copies" true
    (counter_value srv "decoder_copies" > 0)

(* ---- vectored write path ---- *)

(* The same request stream through two identical servers: one drained
   through the single-buffer view (out_view/out_consume), one through
   the vectored path (out_vectors/out_vec_consume) with deliberately
   awkward partial consumes that land inside the 5-byte frame header
   and inside the deferred TOKENS payload. The reconstructed reply
   streams must be byte-identical. *)
let drive_requests srv id reqs =
  let b = Buffer.create 4096 in
  List.iter (fun r -> W.encode_request b r) reqs;
  let data = Buffer.to_bytes b in
  SV.on_data srv id data ~pos:0 ~len:(Bytes.length data)

let collect_view srv id =
  let out = Buffer.create 4096 in
  let continue = ref true in
  while !continue do
    let buf, pos, len = SV.out_view srv id in
    if len = 0 then continue := false
    else begin
      Buffer.add_subbytes out buf pos len;
      SV.out_consume srv id len
    end
  done;
  Buffer.contents out

let collect_vectored srv id ~step =
  let vecs = Array.make 8 (Bytes.empty, 0, 0) in
  let out = Buffer.create 4096 in
  let continue = ref true in
  while !continue do
    let k = SV.out_vectors srv id vecs in
    if k = 0 then continue := false
    else begin
      let total = ref 0 in
      for i = 0 to k - 1 do
        let _, _, len = vecs.(i) in
        total := !total + len
      done;
      let n = min step !total in
      let left = ref n and i = ref 0 in
      while !left > 0 do
        let buf, pos, len = vecs.(!i) in
        let take = min len !left in
        Buffer.add_subbytes out buf pos take;
        left := !left - take;
        incr i
      done;
      SV.out_vec_consume srv id n
    end
  done;
  Buffer.contents out

let test_vectored_write_parity () =
  let input = Gen_data.json ~seed:0xFEED1L ~target_bytes:3000 () in
  let reqs = [ W.Open "json"; W.Feed input; W.Flush; W.Close ] in
  let run collect =
    let srv = SV.create () in
    let id = SV.on_connect srv in
    drive_requests srv id reqs;
    let s = collect srv id in
    (s, srv)
  in
  let view_stream, _ = run collect_view in
  check "view stream nonempty" true (String.length view_stream > 0);
  List.iter
    (fun step ->
      let vec_stream, srv =
        run (fun srv id -> collect_vectored srv id ~step)
      in
      check
        (Printf.sprintf "vectored stream byte-identical (step %d)" step)
        true
        (vec_stream = view_stream);
      check "writev consumptions counted" true
        (counter_value srv "writevs" > 0))
    [ 1; 3; 7; 4096; max_int ]

(* ---- gathered feeds ---- *)

let test_feed_batch_parity () =
  let engine = grammar_engine "json" in
  let input = Gen_data.json ~seed:0xBA7C4L ~target_bytes:4096 () in
  let n = String.length input in
  let run_batch segments =
    let toks = ref [] in
    let tok =
      Stream_tokenizer.create engine ~emit:(fun lex rule ->
          toks := (lex, rule) :: !toks)
    in
    let arr =
      Array.of_list (List.map (fun (pos, len) -> (input, pos, len)) segments)
    in
    Stream_tokenizer.feed_batch tok arr (Array.length arr);
    (match Stream_tokenizer.finish tok with
    | Engine.Finished -> ()
    | Engine.Failed _ -> Alcotest.fail "batch workload must tokenize");
    List.rev !toks
  in
  let whole = run_batch [ (0, n) ] in
  check "tokens produced" true (whole <> []);
  let segs_of sizes =
    let rec go pos = function
      | [] -> if pos < n then [ (pos, n - pos) ] else []
      | s :: rest ->
          if pos >= n then []
          else
            let len = min s (n - pos) in
            (pos, len) :: go (pos + len) rest
    in
    go 0 sizes
  in
  check "tiny leading segments" true
    (run_batch (segs_of [ 1; 1; 1; 5; 64 ]) = whole);
  let rec splits pos acc =
    if pos >= n then List.rev acc
    else
      let len = min 97 (n - pos) in
      splits (pos + len) ((pos, len) :: acc)
  in
  check "97-byte segmentation" true (run_batch (splits 0 []) = whole);
  check "empty segments are no-ops" true
    (run_batch [ (0, 0); (0, n); (n, 0) ] = whole)

(* ---- client escaping ---- *)

let prop_escape_parity =
  QCheck.Test.make ~count:500 ~name:"client escaping ≡ Printf %S"
    (QCheck.make gen_bytes) (fun s ->
      let b = Buffer.create 64 in
      Serve.Client.append_escaped b (Bytes.of_string s) 0 (String.length s);
      Buffer.contents b = Printf.sprintf "%S" s)

let test_padded_parity () =
  List.iter
    (fun name ->
      let b = Buffer.create 32 in
      Serve.Client.append_padded b name;
      Alcotest.(check string)
        ("padding for " ^ name)
        (Printf.sprintf "%-12s " name)
        (Buffer.contents b))
    [ ""; "x"; "number"; "exactly12chr"; "longer_than_twelve" ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_request_roundtrip;
    QCheck_alcotest.to_alcotest prop_reply_roundtrip;
    QCheck_alcotest.to_alcotest prop_chunked_decode;
    Alcotest.test_case "lifecycle ≡ batch engine" `Quick test_lifecycle_parity;
    Alcotest.test_case "engine cache sharing" `Quick test_engine_cache_sharing;
    Alcotest.test_case "engine cache flag keys" `Quick
      test_engine_cache_flag_keys;
    Alcotest.test_case "idle eviction" `Quick test_idle_eviction;
    Alcotest.test_case "capacity rejection" `Quick test_capacity_rejection;
    Alcotest.test_case "backpressure" `Quick test_backpressure;
    Alcotest.test_case "flush resets stream" `Quick test_flush_resets_stream;
    Alcotest.test_case "lexical failure" `Quick test_lexical_failure;
    Alcotest.test_case "protocol errors" `Quick test_protocol_errors;
    Alcotest.test_case "drain" `Quick test_drain;
    QCheck_alcotest.to_alcotest prop_view_decode_identity;
    Alcotest.test_case "view straddle + compaction" `Quick
      test_view_straddle_compaction;
    Alcotest.test_case "coalescing parity" `Quick test_coalescing_parity;
    Alcotest.test_case "backpressure mid-coalesced-batch" `Quick
      test_backpressure_mid_batch;
    Alcotest.test_case "decoder copies stat" `Quick test_decoder_copies_stat;
    Alcotest.test_case "vectored write parity" `Quick
      test_vectored_write_parity;
    Alcotest.test_case "feed_batch parity" `Quick test_feed_batch_parity;
    QCheck_alcotest.to_alcotest prop_escape_parity;
    Alcotest.test_case "client padding parity" `Quick test_padded_parity;
  ]
