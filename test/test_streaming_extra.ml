(* Second-wave streaming tests: the chunked tokenizer against the one-shot
   runner on real format grammars, adversarial chunkings, and API edges. *)

open Streamtok

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let engine_of g =
  match Engine.compile (Grammar.dfa g) with
  | Ok e -> e
  | Error _ -> Alcotest.failf "%s: unbounded" g.Grammar.name

let chunked_with_plan e input plan =
  let acc = ref [] in
  let st = Stream_tokenizer.create e ~emit:(fun lex r -> acc := (lex, r) :: !acc) in
  let pos = ref 0 in
  let n = String.length input in
  List.iter
    (fun chunk ->
      let len = min chunk (n - !pos) in
      if len > 0 then begin
        Stream_tokenizer.feed st input !pos len;
        pos := !pos + len
      end)
    plan;
  while !pos < n do
    let len = min 4096 (n - !pos) in
    Stream_tokenizer.feed st input !pos len;
    pos := !pos + len
  done;
  let o = Stream_tokenizer.finish st in
  (List.rev !acc, o)

let against_one_shot name g input plans =
  let e = engine_of g in
  let reference, ro = Engine.tokens e input in
  List.iteri
    (fun i plan ->
      let got, o = chunked_with_plan e input plan in
      check
        (Printf.sprintf "%s plan %d tokens" name i)
        true
        (Gen.same_tokens reference got);
      check
        (Printf.sprintf "%s plan %d outcome" name i)
        true
        (match (ro, o) with
        | Engine.Finished, Engine.Finished -> true
        | Engine.Failed { offset = a; _ }, Engine.Failed { offset = b; _ } ->
            a = b
        | _ -> false))
    plans

let plans = [ [ 1 ]; [ 2; 3; 1 ]; [ 7 ]; [ 64 ]; [ 1; 1; 1; 1; 1000 ] ]

let test_formats_chunked () =
  List.iter
    (fun (g : Grammar.t) ->
      let gen = Option.get (Gen_data.by_name g.Grammar.name) in
      let input = gen ~seed:21L ~target_bytes:4_000 () in
      against_one_shot g.Grammar.name g input plans)
    Formats.benchmark_formats

let test_logs_chunked () =
  List.iter
    (fun (g : Grammar.t) ->
      let input =
        Gen_logs.generate ~format:g.Grammar.name ~seed:22L ~target_bytes:3_000 ()
      in
      against_one_shot g.Grammar.name g input [ [ 1 ]; [ 13 ] ])
    Logs_grammars.all

let test_zero_length_feeds () =
  let e = engine_of Formats.csv in
  let acc = ref [] in
  let st = Stream_tokenizer.create e ~emit:(fun lex r -> acc := (lex, r) :: !acc) in
  Stream_tokenizer.feed st "" 0 0;
  Stream_tokenizer.feed st "a,b" 0 0;
  Stream_tokenizer.feed_string st "a,b";
  Stream_tokenizer.feed st "xyz" 1 0;
  check "zero feeds ok" true (Stream_tokenizer.finish st = Engine.Finished);
  check_int "three tokens" 3 (List.length !acc)

let test_feed_offsets () =
  (* feeding interior slices of a larger buffer *)
  let e = engine_of Formats.csv in
  let buffer = "###a,b,c###" in
  let acc = ref [] in
  let st = Stream_tokenizer.create e ~emit:(fun lex r -> acc := (lex, r) :: !acc) in
  Stream_tokenizer.feed st buffer 3 2;
  (* "a," *)
  Stream_tokenizer.feed st buffer 5 3;
  (* "b,c" *)
  check "finish" true (Stream_tokenizer.finish st = Engine.Finished);
  check "tokens" true
    (Gen.same_tokens !acc
       (List.rev [ ("a", 3); (",", 0); ("b", 3); (",", 0); ("c", 3) ]))

let test_emit_during_finish () =
  (* a token whose maximality is only decided by EOS: emitted by finish *)
  let e = engine_of Formats.json in
  let during_feed = ref 0 and total = ref 0 in
  let st =
    Stream_tokenizer.create e ~emit:(fun _ _ -> incr total)
  in
  Stream_tokenizer.feed_string st "123";
  during_feed := !total;
  check "nothing before finish" true (!during_feed = 0);
  check "finished" true (Stream_tokenizer.finish st = Engine.Finished);
  check_int "one token at finish" 1 !total

let test_failure_offset_across_chunks () =
  let e = engine_of Formats.json in
  let st = Stream_tokenizer.create e ~emit:(fun _ _ -> ()) in
  Stream_tokenizer.feed_string st "{\"a\": 1";
  Stream_tokenizer.feed_string st "2, ";
  Stream_tokenizer.feed_string st "@oops";
  check "failed" true (Stream_tokenizer.failed st);
  match Stream_tokenizer.finish st with
  | Engine.Failed { offset; _ } -> check_int "offset" 10 offset
  | Engine.Finished -> Alcotest.fail "expected failure"

let test_unterminated_token_leftover () =
  let e = engine_of Formats.json in
  let st = Stream_tokenizer.create e ~emit:(fun _ _ -> ()) in
  Stream_tokenizer.feed_string st "\"never closed";
  match Stream_tokenizer.finish st with
  | Engine.Failed { offset = 0; pending } ->
      check "pending is the partial token" true (pending = "\"never closed")
  | _ -> Alcotest.fail "expected leftover failure"

let test_force_te_equivalent () =
  (* ablation knob: the general engine on a K=1 grammar must agree with
     the Fig. 5 fast path *)
  let d = Grammar.dfa Formats.csv in
  let fast = match Engine.compile d with Ok e -> e | Error _ -> assert false in
  let general =
    match Engine.compile ~force_te:true d with
    | Ok e -> e
    | Error _ -> assert false
  in
  check "forced engine uses TeDFA" true (Engine.te_states general > 0);
  check "fast path has no TeDFA" true (Engine.te_states fast = 0);
  let input = Gen_data.csv ~seed:33L ~target_bytes:20_000 () in
  let a, oa = Engine.tokens fast input in
  let b, ob = Engine.tokens general input in
  check "same tokens" true (Gen.same_tokens a b);
  check "same outcome" true (oa = ob)

let test_footprint_grows_lazily () =
  let d = Grammar.dfa Formats.json in
  let e = match Engine.compile d with Ok e -> e | Error _ -> assert false in
  let before = Engine.te_states e in
  let input = Gen_data.json ~seed:44L ~target_bytes:50_000 () in
  ignore (Engine.tokens e input);
  let after = Engine.te_states e in
  check "powerstates materialized by running" true (after > before);
  (* a second run over the same data materializes nothing new *)
  ignore (Engine.tokens e input);
  check_int "stable after warmup" after (Engine.te_states e);
  let width = Dfa.num_classes (Engine.dfa e) + 1 in
  check "footprint accounts for them" true
    (Engine.footprint_bytes e > after * width * 8)

let test_engine_reuse_across_inputs () =
  (* one compiled engine, many runs: no hidden per-run state *)
  let e = engine_of Formats.csv in
  let i1 = "a,b\n" and i2 = "xx" and i3 = "" in
  let r1 = Engine.tokens e i1 in
  let _ = Engine.tokens e i2 in
  let r1' = Engine.tokens e i1 in
  let r3 = Engine.tokens e i3 in
  check "deterministic across reuse" true (r1 = r1');
  check "empty ok" true (snd r3 = Engine.Finished)

let prop_random_chunk_plans =
  QCheck.Test.make ~count:150 ~name:"random chunk plans ≡ one-shot"
    (QCheck.pair Gen.grammar_input_arb (QCheck.list_of_size (QCheck.Gen.int_range 1 6) QCheck.small_nat))
    (fun ((rules, input), sizes) ->
      let d = Dfa.of_rules rules in
      match Engine.compile d with
      | Error Engine.Unbounded_tnd -> QCheck.assume_fail ()
      | Ok e ->
          let plan = List.map (fun s -> 1 + (s mod 9)) sizes in
          let reference, ro = Engine.tokens e input in
          let got, o = chunked_with_plan e input plan in
          Gen.same_tokens reference got
          &&
          (match (ro, o) with
          | Engine.Finished, Engine.Finished -> true
          | Engine.Failed { offset = a; _ }, Engine.Failed { offset = b; _ } ->
              a = b
          | _ -> false))

(* Chunked accel ≡ chunked noaccel (1k seeded cases): the streaming skip
   loops — M_k1's stop-short re-entry and M_te's dual-cursor skip with the
   K-symbol lead — against the [~accel:false] reference tokenizer under
   random chunk plans, so skip entry and exit land on chunk boundaries in
   every alignment. *)
let test_accel_chunked_parity () =
  let rng = Prng.create 0x5C1FFEDL in
  let cases = ref 0 in
  while !cases < 1000 do
    let rules =
      match Prng.int rng 2 with
      | 0 -> Fuzz.Gen.grammar rng ~cls:Fuzz.Gen.charset_bytes
      | _ -> Grammar_corpus.sample rng
    in
    let da = Dfa.of_rules rules in
    let dp = Dfa.of_rules ~accel:false rules in
    match (Engine.compile da, Engine.compile dp) with
    | Error Engine.Unbounded_tnd, Error Engine.Unbounded_tnd -> ()
    | Error _, Ok _ | Ok _, Error _ ->
        Alcotest.fail "accel/noaccel disagree on max-TND boundedness"
    | Ok ea, Ok ep ->
        let base = Fuzz.Gen.token_dense rng da ~target_len:(40 + Prng.int rng 300) in
        let inputs = [ base; Fuzz.Gen.near_miss rng base ] in
        List.iter
          (fun input ->
            let plan =
              List.init (1 + Prng.int rng 8) (fun _ -> 1 + Prng.int rng 9)
            in
            let ta, oa = chunked_with_plan ea input plan in
            let tp, op = chunked_with_plan ep input plan in
            if not (ta = tp && op = oa) then
              Alcotest.failf "accel/noaccel chunked mismatch on %S" input;
            incr cases)
          inputs
  done

(* The streaming latency claim: a maximal token is emitted no later than
   max(K,1) bytes after its last byte is fed (plus EOS drain). *)
let test_emission_latency_bound () =
  List.iter
    (fun (g : Grammar.t) ->
      let e = engine_of g in
      let delay = max (Engine.k e) 1 in
      let gen = Option.get (Gen_data.by_name g.Grammar.name) in
      let input = gen ~seed:91L ~target_bytes:3_000 () in
      let fed = ref 0 in
      let emitted_bytes = ref 0 in
      let worst = ref 0 in
      let st =
        Stream_tokenizer.create e ~emit:(fun lexeme _ ->
            emitted_bytes := !emitted_bytes + String.length lexeme;
            (* the token's last byte arrived at stream offset !emitted_bytes;
               we have fed !fed bytes so far *)
            let latency = !fed - !emitted_bytes in
            if latency > !worst then worst := latency)
      in
      String.iter
        (fun c ->
          incr fed;
          Stream_tokenizer.feed st (String.make 1 c) 0 1)
        input;
      ignore (Stream_tokenizer.finish st);
      check
        (Printf.sprintf "%s latency ≤ %d" g.Grammar.name delay)
        true (!worst <= delay))
    [ Formats.csv; Formats.json; Formats.xml; Formats.linux_log ]

let suite =
  [
    Alcotest.test_case "formats chunked (5 plans)" `Quick test_formats_chunked;
    Alcotest.test_case "emission latency ≤ max(K,1)" `Quick
      test_emission_latency_bound;
    Alcotest.test_case "logs chunked" `Quick test_logs_chunked;
    Alcotest.test_case "zero-length feeds" `Quick test_zero_length_feeds;
    Alcotest.test_case "interior slices" `Quick test_feed_offsets;
    Alcotest.test_case "emit during finish" `Quick test_emit_during_finish;
    Alcotest.test_case "failure offset across chunks" `Quick
      test_failure_offset_across_chunks;
    Alcotest.test_case "unterminated leftover" `Quick
      test_unterminated_token_leftover;
    Alcotest.test_case "force_te ablation agrees" `Quick test_force_te_equivalent;
    Alcotest.test_case "lazy footprint" `Quick test_footprint_grows_lazily;
    Alcotest.test_case "engine reuse" `Quick test_engine_reuse_across_inputs;
    QCheck_alcotest.to_alcotest prop_random_chunk_plans;
    Alcotest.test_case "accel ≡ noaccel chunked (1k seeded)" `Quick
      test_accel_chunked_parity;
  ]
