(* The st_obs metrics layer and the instrumented-runner contract: metric
   semantics, JSON / Prometheus serialization, and the guarantee that the
   instrumented engine variants observe without perturbing — identical
   token streams, and stats that account for every input byte. *)

open Streamtok
module M = Obs.Metrics

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let test_counter () =
  let c = M.Counter.create () in
  check_int "fresh" 0 (M.Counter.value c);
  M.Counter.incr c;
  M.Counter.add c 41;
  check_int "incr + add" 42 (M.Counter.value c)

let test_gauge () =
  let g = M.Gauge.create () in
  M.Gauge.set g 2.5;
  check "set" true (M.Gauge.value g = 2.5);
  M.Gauge.set_int g 7;
  check "set_int" true (M.Gauge.value g = 7.0);
  M.Gauge.set_max g 3.0;
  check "set_max keeps high water" true (M.Gauge.value g = 7.0);
  M.Gauge.set_max g 9.0;
  check "set_max raises" true (M.Gauge.value g = 9.0)

let test_histogram_buckets () =
  (* bucket index = bit length: 0 → 0, 1 → 1, 2..3 → 2, 4..7 → 3, ... *)
  check_int "index 0" 0 (M.Histogram.bucket_index 0);
  check_int "index -5 clamps" 0 (M.Histogram.bucket_index (-5));
  check_int "index 1" 1 (M.Histogram.bucket_index 1);
  check_int "index 2" 2 (M.Histogram.bucket_index 2);
  check_int "index 3" 2 (M.Histogram.bucket_index 3);
  check_int "index 4" 3 (M.Histogram.bucket_index 4);
  check_int "index 7" 3 (M.Histogram.bucket_index 7);
  check_int "index 8" 4 (M.Histogram.bucket_index 8);
  check_int "index max_int" 62 (M.Histogram.bucket_index max_int);
  check_int "upper 0" 0 (M.Histogram.bucket_upper 0);
  check_int "upper 3" 7 (M.Histogram.bucket_upper 3);
  (* every observation lands in the bucket whose bound brackets it *)
  List.iter
    (fun v ->
      let i = M.Histogram.bucket_index v in
      check (Printf.sprintf "v=%d under upper" v) true
        (v <= M.Histogram.bucket_upper i);
      if i > 0 then
        check (Printf.sprintf "v=%d above previous" v) true
          (v > M.Histogram.bucket_upper (i - 1)))
    [ 1; 2; 3; 4; 15; 16; 17; 1000; 65535; 65536 ]

let test_histogram_percentiles () =
  let feq msg a b = check msg true (abs_float (a -. b) < 1e-9) in
  (* empty histogram: every quantile is 0 *)
  let h = M.Histogram.create () in
  feq "empty p50" 0.0 (M.Histogram.percentile h 0.50);
  (* single-valued distribution: 100 observations of 7 land in bucket
     [4, 7]; linear interpolation puts p50 mid-bucket, and the max-value
     clamp keeps tail quantiles at the recorded maximum *)
  for _ = 1 to 100 do
    M.Histogram.observe h 7
  done;
  feq "pinned p50" 5.5 (M.Histogram.percentile h 0.50);
  feq "pinned p99" 6.97 (M.Histogram.percentile h 0.99);
  feq "p100 clamps to max" 7.0 (M.Histogram.percentile h 1.0);
  check "q clamps below 0" true (M.Histogram.percentile h (-3.0) >= 0.0);
  (* monotone in q *)
  let h2 = M.Histogram.create () in
  List.iter (M.Histogram.observe h2) [ 1; 3; 9; 27; 81; 243; 729; 2187 ];
  let p50 = M.Histogram.percentile h2 0.50 in
  let p90 = M.Histogram.percentile h2 0.90 in
  let p99 = M.Histogram.percentile h2 0.99 in
  check "p50 <= p90" true (p50 <= p90);
  check "p90 <= p99" true (p99 >= p90);
  check "p99 <= max" true (p99 <= float_of_int (M.Histogram.max_value h2));
  (* log2 resolution: estimates within a factor of 2 of the true quantile
     on a uniform distribution *)
  let h3 = M.Histogram.create () in
  for v = 1 to 1000 do
    M.Histogram.observe h3 v
  done;
  List.iter
    (fun (q, truth) ->
      let est = M.Histogram.percentile h3 q in
      check
        (Printf.sprintf "uniform q=%.2f within 2x" q)
        true
        (est >= truth /. 2.0 && est <= truth *. 2.0))
    [ (0.50, 500.); (0.90, 900.); (0.99, 990.) ]

let test_histogram_observe () =
  let h = M.Histogram.create () in
  List.iter (M.Histogram.observe h) [ 0; 1; 5; 5; 100 ];
  check_int "count" 5 (M.Histogram.count h);
  check_int "sum" 111 (M.Histogram.sum h);
  check_int "max" 100 (M.Histogram.max_value h);
  (* buckets: the non-empty prefix, cumulative count = total *)
  let bs = M.Histogram.buckets h in
  check_int "bucket total" 5 (List.fold_left (fun a (_, c) -> a + c) 0 bs);
  check "bounds increasing" true
    (let rec incr_bounds = function
       | (u1, _) :: ((u2, _) :: _ as rest) -> u1 < u2 && incr_bounds rest
       | _ -> true
     in
     incr_bounds bs);
  let last_upper, last_count = List.nth bs (List.length bs - 1) in
  check "last bucket holds 100" true (last_upper >= 100 && last_count = 1)

let test_span () =
  let s = M.Span.create () in
  M.Span.add s 0.25;
  M.Span.add s 0.5;
  check_int "count" 2 (M.Span.count s);
  check "seconds accumulate" true (abs_float (M.Span.seconds s -. 0.75) < 1e-9);
  let r = M.Span.time s (fun () -> 42) in
  check_int "time returns value" 42 r;
  check_int "time counts section" 3 (M.Span.count s)

(* ---- serialization ---- *)

let test_json_exact () =
  let r = M.Registry.create () in
  M.Counter.add (M.Registry.counter r "tokens") 12;
  M.Gauge.set (M.Registry.gauge r ~labels:[ ("grammar", "json") ] "mb_s") 1.5;
  let h = M.Registry.histogram r "chunk_bytes" in
  M.Histogram.observe h 3;
  check_str "document"
    "{\"schema\":\"streamtok/metrics/v1\",\"metrics\":[\
     {\"name\":\"tokens\",\"type\":\"counter\",\"value\":12},\
     {\"name\":\"mb_s\",\"type\":\"gauge\",\"value\":1.5,\
     \"labels\":{\"grammar\":\"json\"}},\
     {\"name\":\"chunk_bytes\",\"type\":\"histogram\",\"count\":1,\"sum\":3,\
     \"max\":3,\"p50\":2.5,\"p90\":2.9,\"p99\":2.99,\
     \"buckets\":[[0,0],[1,0],[3,1]]}]}"
    (Obs.Export.to_json_string r)

let test_json_non_finite () =
  check_str "nan is null" "null" (Obs.Json.to_string (Obs.Json.Float Float.nan));
  check_str "inf is null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity));
  check_str "escaping" "\"a\\\"b\\\\c\\n\\u0001\""
    (Obs.Json.to_string (Obs.Json.String "a\"b\\c\n\001"))

(* Vocab-style inputs for the parser: BPE JSON vocabularies are big flat
   objects whose keys are arbitrary byte strings — \u escapes (including
   surrogate pairs), long keys, and machine-generated nesting all have to
   round-trip exactly, because a key that decodes wrong becomes a wrong
   token. *)
let parse_ok s =
  match Obs.Json.of_string s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S: %s" s e

let test_json_parse_unicode () =
  let str s =
    match parse_ok s with
    | Obs.Json.String v -> v
    | _ -> Alcotest.failf "expected string for %S" s
  in
  check_str "ascii \\u" "A" (str "\"\\u0041\"");
  check_str "2-byte utf8" "\xc3\xa9" (str "\"\\u00e9\"");
  check_str "3-byte utf8" "\xe2\x82\xac" (str "\"\\u20ac\"");
  check_str "surrogate pair" "\xf0\x9f\x98\x80" (str "\"\\ud83d\\ude00\"");
  check_str "lone high surrogate" "\xef\xbf\xbd" (str {|"\ud83d"|});
  check_str "lone low surrogate" "\xef\xbf\xbd" (str {|"\ude00"|});
  check_str "high surrogate + non-surrogate escape" "\xef\xbf\xbdA"
    (str {|"\ud83dA"|});
  check_str "pair then text" "x\xf0\x9f\x98\x80y"
    (str "\"x\\ud83d\\ude00y\"");
  check "truncated \\u fails" true
    (Result.is_error (Obs.Json.of_string {|"\u00"|}));
  check "bad hex fails" true
    (Result.is_error (Obs.Json.of_string {|"\u00zz"|}))

let test_json_parse_vocab_shapes () =
  (* Long keys: a 64 KiB key must come back byte-identical. *)
  let key = String.init 65536 (fun i -> Char.chr (0x61 + (i mod 26))) in
  (match parse_ok (Printf.sprintf "{%S: 7}" key) with
  | Obs.Json.Obj [ (k, v) ] ->
      check "long key round-trips" true (String.equal k key);
      check_int "long key value" 7
        (match Obs.Json.to_int_opt v with Some n -> n | None -> -1)
  | _ -> Alcotest.fail "expected 1-entry object");
  (* Wide objects: vocab files are one object with thousands of entries. *)
  let entries =
    String.concat "," (List.init 2000 (fun i -> Printf.sprintf "\"t%d\":%d" i i))
  in
  (match parse_ok ("{" ^ entries ^ "}") with
  | Obs.Json.Obj kvs ->
      check_int "wide object size" 2000 (List.length kvs);
      check_int "wide object last value" 1999
        (match Obs.Json.to_int_opt (snd (List.nth kvs 1999)) with
        | Some n -> n
        | None -> -1)
  | _ -> Alcotest.fail "expected object");
  (* Deep nesting: 512 levels of arrays must not blow the parser. *)
  let deep = String.make 512 '[' ^ "1" ^ String.make 512 ']' in
  let rec depth = function
    | Obs.Json.List [ v ] -> 1 + depth v
    | Obs.Json.Int 1 -> 0
    | _ -> Alcotest.fail "unexpected nesting shape"
  in
  check_int "deep nesting depth" 512 (depth (parse_ok deep))

(* The documents the library produces must be valid JSON by the repo's own
   validator: tokenize with the Formats.json grammar, then stream the
   tokens through Json_validate. *)
let json_valid s =
  let d = Grammar.dfa Formats.json in
  let e = match Engine.compile d with Ok e -> e | Error _ -> assert false in
  let v = Json_validate.create () in
  match
    Engine.run_string e s ~emit:(fun ~pos:_ ~len ~rule ->
        ignore (Json_validate.push v ~lexeme_len:len ~rule))
  with
  | Engine.Failed _ -> false
  | Engine.Finished -> ( match Json_validate.finish v with
      | Json_validate.Valid -> true
      | Json_validate.Invalid _ -> false)

let test_json_validates () =
  let r = M.Registry.create () in
  M.Counter.add (M.Registry.counter r ~help:"input bytes" "bytes_in") 1024;
  M.Gauge.set (M.Registry.gauge r "ratio") 0.325;
  M.Gauge.set (M.Registry.gauge r "bad") Float.nan;
  let h = M.Registry.histogram r ~labels:[ ("x", "y\"z") ] "sizes" in
  List.iter (M.Histogram.observe h) [ 1; 100; 10_000 ];
  M.Span.add (M.Registry.span r "run_seconds") 0.004;
  check "registry JSON validates" true (json_valid (Obs.Export.to_json_string r));
  let st = Run_stats.create () in
  Run_stats.add_chunk st 512;
  Run_stats.record_token st ~rule:0 ~len:3;
  Run_stats.record_token st ~rule:2 ~len:1;
  Run_stats.record_failure st;
  Run_stats.record_parallel st ~segments:4 ~splice_retries:1 ~sync_tokens:9;
  check "run-stats JSON validates" true (json_valid (Run_stats.to_json_string st))

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_prometheus () =
  let r = M.Registry.create () in
  M.Counter.add (M.Registry.counter r ~help:"input bytes" "bytes_in") 99;
  M.Gauge.set (M.Registry.gauge r ~labels:[ ("g", "a\"b") ] "mb/s") 2.0;
  let h = M.Registry.histogram r "chunk_bytes" in
  List.iter (M.Histogram.observe h) [ 1; 3 ];
  M.Span.add (M.Registry.span r "run_seconds") 0.5;
  let out = Obs.Export.to_prometheus r in
  check "counter sample" true (contains ~sub:"streamtok_bytes_in 99\n" out);
  check "counter help" true
    (contains ~sub:"# HELP streamtok_bytes_in input bytes\n" out);
  check "counter type" true
    (contains ~sub:"# TYPE streamtok_bytes_in counter\n" out);
  check "gauge name sanitized, label escaped" true
    (contains ~sub:"streamtok_mb_s{g=\"a\\\"b\"} 2\n" out);
  (* cumulative buckets: le=1 has 1, le=3 has both, +Inf total *)
  check "bucket le=1" true
    (contains ~sub:"streamtok_chunk_bytes_bucket{le=\"1\"} 1\n" out);
  check "bucket le=3" true
    (contains ~sub:"streamtok_chunk_bytes_bucket{le=\"3\"} 2\n" out);
  check "bucket +Inf" true
    (contains ~sub:"streamtok_chunk_bytes_bucket{le=\"+Inf\"} 2\n" out);
  check "histogram sum/count" true
    (contains ~sub:"streamtok_chunk_bytes_sum 4\n" out
    && contains ~sub:"streamtok_chunk_bytes_count 2\n" out);
  (* estimated quantiles ride along as summary-style samples: for {1, 3}
     the p50 rank lands exactly on the le=1 bucket boundary and the tail
     quantiles interpolate inside [2, 3] *)
  check "histogram p50" true
    (contains ~sub:"streamtok_chunk_bytes{quantile=\"0.5\"} 1\n" out);
  check "histogram p90" true
    (contains ~sub:"streamtok_chunk_bytes{quantile=\"0.9\"} 2.8\n" out);
  check "histogram p99" true
    (contains ~sub:"streamtok_chunk_bytes{quantile=\"0.99\"} 2.98\n" out);
  check "span as summary" true
    (contains ~sub:"# TYPE streamtok_run_seconds summary\n" out
    && contains ~sub:"streamtok_run_seconds_sum 0.5\n" out
    && contains ~sub:"streamtok_run_seconds_count 1\n" out)

(* ---- the instrumented-runner contract ---- *)

let tokens_via run =
  let acc = ref [] in
  let outcome = run ~emit:(fun ~pos ~len ~rule -> acc := (pos, len, rule) :: !acc) in
  (List.rev !acc, outcome)

let test_instrumented_identical () =
  List.iter
    (fun (src, input) ->
      let e =
        match Engine.compile_grammar src with
        | Ok e -> e
        | Error _ -> Alcotest.fail "unexpected unbounded"
      in
      let plain = tokens_via (fun ~emit -> Engine.run_string e input ~emit) in
      let st = Run_stats.create () in
      let inst =
        tokens_via
          (fun ~emit -> Engine.run_string_instrumented e input ~stats:st ~emit)
      in
      check (Printf.sprintf "identical on %S" input) true (plain = inst);
      check_int "bytes_in" (String.length input) (Run_stats.bytes_in st);
      check_int "chunks" 1 (Run_stats.chunks st);
      check_int "tokens_out" (List.length (fst plain)) (Run_stats.tokens_out st);
      check_int "failures"
        (match snd plain with Engine.Finished -> 0 | Engine.Failed _ -> 1)
        (Run_stats.failures st))
    [
      (* K = 1 table path, success and failure *)
      ("[0-9]+\n[ ]+", "12 345 6 ");
      ("[0-9]+\n[ ]+", "12 x34");
      (* K = 3 TE path, success and failure *)
      ("[0-9]+([eE][+-]?[0-9]+)?\n[ ]+", "1e+5 27 3e9 ");
      ("[0-9]+([eE][+-]?[0-9]+)?\n[ ]+", "1e+5 !");
      ("[0-9]+([eE][+-]?[0-9]+)?\n[ ]+", "");
    ]

let test_rule_tallies () =
  let e =
    match Engine.compile_grammar "[0-9]+\n[ ]+\n[a-z]+" with
    | Ok e -> e
    | Error _ -> assert false
  in
  let st = Run_stats.create () in
  ignore
    (Engine.run_string_instrumented e "12 abc 7 x" ~stats:st
       ~emit:(fun ~pos:_ ~len:_ ~rule:_ -> ()));
  check_int "rule 0 (numbers)" 2 (Run_stats.rule_count st 0);
  check_int "rule 1 (spaces)" 3 (Run_stats.rule_count st 1);
  check_int "rule 2 (words)" 2 (Run_stats.rule_count st 2);
  check_int "total" 7 (Run_stats.tokens_out st)

let test_stream_tokenizer_stats () =
  let e =
    match Engine.compile_grammar "[0-9]+\n[ ]+" with
    | Ok e -> e
    | Error _ -> assert false
  in
  let plain = ref [] and inst = ref [] in
  let feed_all acc stats =
    let t = Stream_tokenizer.create ?stats e ~emit:(fun lex r -> acc := (lex, r) :: !acc) in
    List.iter (Stream_tokenizer.feed_string t) [ "12 3"; "45"; " 6 " ];
    Stream_tokenizer.finish t
  in
  let o1 = feed_all plain None in
  let st = Run_stats.create () in
  let o2 = feed_all inst (Some st) in
  check "same outcome" true (o1 = o2);
  check "same tokens" true (!plain = !inst);
  check_int "bytes_in" 9 (Run_stats.bytes_in st);
  check_int "chunks" 3 (Run_stats.chunks st);
  check_int "tokens" (List.length !plain) (Run_stats.tokens_out st)

(* ---- memory footprint under alphabet compression ---- *)

let compile_exn ?classes src =
  match Engine.compile (Dfa.of_grammar ?classes src) with
  | Ok e -> e
  | Error _ -> Alcotest.fail "unexpected unbounded"

(* The K <= 1 footprint is fully determined: classed transition table +
   accept row + the 256-byte classmap + the classed k1 row + constants.
   Pin the formula so the classmap can't silently fall out of the
   accounting. *)
let test_footprint_accounts_classmap () =
  let e = compile_exn "[0-9]+\n[ ]+" in
  let d = Engine.dfa e in
  let nc = Dfa.num_classes d in
  check "classed build compresses" true (nc < 256);
  let dfa_bytes =
    ((Array.length d.Dfa.trans + Array.length d.Dfa.accept) * 8)
    + 256
    + Dfa.accel_table_bytes d
  in
  check "accel tables accounted" true (Dfa.accel_table_bytes d > 0);
  check_int "k1 footprint = tables + classmap + accel + buffers"
    (dfa_bytes + Engine.k1_table_bytes e + 1 + 64)
    (Engine.footprint_bytes e);
  check "classmap term present" true
    (Engine.footprint_bytes e > Dfa.size d * nc * 8)

(* TE powerstates materialize lazily, so the footprint is monotone in
   te_states: running input can only grow both, never shrink either. *)
let test_footprint_monotone_in_te_states () =
  let e = compile_exn "[0-9]+([eE][+-]?[0-9]+)?\n[ ]+" in
  check "TE mode" true (Engine.k e > 1);
  let states0 = Engine.te_states e and fp0 = Engine.footprint_bytes e in
  ignore (Engine.tokens e "1e+5 27 3e9 400 5e-1 ");
  let states1 = Engine.te_states e and fp1 = Engine.footprint_bytes e in
  check "input materializes powerstates" true (states1 > states0);
  check "footprint grows with te_states" true (fp1 > fp0);
  check "growth accounts full rows" true
    (fp1 - fp0 >= (states1 - states0) * Te_dfa.width (Option.get (Engine.Internal.te_dfa e)) * 8)

(* On an ASCII grammar the classed tables must be strictly smaller than the
   dense 256-column reference build of the same grammar. *)
let test_footprint_shrinks_vs_dense () =
  List.iter
    (fun src ->
      let classed = compile_exn src in
      let dense = compile_exn ~classes:false src in
      check (Printf.sprintf "classed < dense on %S" src) true
        (Engine.footprint_bytes classed < Engine.footprint_bytes dense))
    [
      "[0-9]+\n[ ]+" (* K = 1 table path *);
      "[0-9]+([eE][+-]?[0-9]+)?\n[ ]+" (* K = 3 TE path *);
      "[a-z]+\n[0-9]+\n[ \t]+" (* identifiers *);
    ]

let prop_bytes_in_accounts_for_input =
  QCheck.Test.make ~count:300 ~name:"instrumented bytes_in = input length"
    Gen.grammar_input_arb (fun (rules, input) ->
      let d = Dfa.of_rules rules in
      match Engine.compile d with
      | Error Engine.Unbounded_tnd -> QCheck.assume_fail ()
      | Ok e ->
          let st = Run_stats.create () in
          let plain = tokens_via (fun ~emit -> Engine.run_string e input ~emit) in
          let inst =
            tokens_via
              (fun ~emit ->
                Engine.run_string_instrumented e input ~stats:st ~emit)
          in
          plain = inst
          && Run_stats.bytes_in st = String.length input
          && Run_stats.tokens_out st = List.length (fst plain))

let suite =
  [
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "gauge" `Quick test_gauge;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "histogram observe" `Quick test_histogram_observe;
    Alcotest.test_case "histogram percentiles" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "span" `Quick test_span;
    Alcotest.test_case "JSON exact form" `Quick test_json_exact;
    Alcotest.test_case "JSON non-finite + escaping" `Quick test_json_non_finite;
    Alcotest.test_case "JSON \\u decoding (surrogates)" `Quick
      test_json_parse_unicode;
    Alcotest.test_case "JSON vocab-shaped inputs" `Quick
      test_json_parse_vocab_shapes;
    Alcotest.test_case "JSON validates" `Quick test_json_validates;
    Alcotest.test_case "Prometheus text format" `Quick test_prometheus;
    Alcotest.test_case "instrumented ≡ plain" `Quick test_instrumented_identical;
    Alcotest.test_case "per-rule tallies" `Quick test_rule_tallies;
    Alcotest.test_case "stream tokenizer stats" `Quick test_stream_tokenizer_stats;
    Alcotest.test_case "footprint accounts classmap" `Quick
      test_footprint_accounts_classmap;
    Alcotest.test_case "footprint monotone in te states" `Quick
      test_footprint_monotone_in_te_states;
    Alcotest.test_case "footprint shrinks vs dense" `Quick
      test_footprint_shrinks_vs_dense;
    QCheck_alcotest.to_alcotest prop_bytes_in_accounts_for_input;
  ]
