(* Alphabet equivalence-class compression: classmap well-formedness, the
   coarsest-partition property against the NFA charset labels, and the
   golden corpus parity battery — every shipped grammar and every workload
   generator output tokenized with dense vs. classed engines, batch and
   under the adversarial chunk splits (token-boundary straddles included). *)

open Streamtok
module Chunking = Fuzz.Chunking

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let golden_grammars = Formats.all @ Languages.all

(* ---- classmap well-formedness ---- *)

let test_classmap_wellformed () =
  List.iter
    (fun g ->
      let name = g.Grammar.name in
      let d = Grammar.dfa g in
      let nc = Dfa.num_classes d in
      check_int (name ^ ": classmap is 256 bytes") 256
        (String.length d.Dfa.classmap);
      check (name ^ ": 1 <= classes <= 256") true (nc >= 1 && nc <= 256);
      check (name ^ ": entries in range") true
        (String.for_all (fun c -> Char.code c < nc) d.Dfa.classmap);
      (* every class id is hit by some byte (numbering is dense) *)
      let used = Array.make nc false in
      String.iter (fun c -> used.(Char.code c) <- true) d.Dfa.classmap;
      check (name ^ ": class numbering surjective") true
        (Array.for_all Fun.id used);
      check_int
        (name ^ ": trans sized states * classes")
        (Dfa.size d * nc)
        (Array.length d.Dfa.trans);
      (* ASCII-heavy formats collapse far below 256 — the point of the
         compression *)
      check (name ^ ": compresses the byte alphabet") true (nc < 256))
    golden_grammars

let test_classmap_deterministic () =
  List.iter
    (fun g ->
      let d1 = Grammar.dfa g in
      let d2 = Dfa.of_rules (Grammar.rules g) in
      check (g.Grammar.name ^ ": rebuild is identical") true (Dfa.equal d1 d2))
    golden_grammars

let test_dense_build_is_identity () =
  let d = Dfa.of_rules ~classes:false (Grammar.rules Formats.json) in
  check_int "dense: 256 classes" 256 (Dfa.num_classes d);
  check "dense: identity classmap" true
    (String.init 256 Char.chr = d.Dfa.classmap)

(* The partition is the coarsest one respecting the rule charsets: bytes in
   the same class are indistinguishable to every NFA label, and any two
   distinct classes are separated by some label. *)
let test_coarsest_partition () =
  List.iter
    (fun g ->
      let name = g.Grammar.name in
      let rules = Grammar.rules g in
      let nfa = Nfa.of_rules rules in
      let classmap, nc = Dfa.equiv_classes nfa in
      let labels =
        Array.to_list nfa.Nfa.trans |> List.concat_map (List.map fst)
      in
      let respects cs =
        (* same class -> same membership *)
        let verdict = Array.make nc (-1) in
        let ok = ref true in
        for b = 0 to 255 do
          let cls = Char.code classmap.[b] in
          let m = if Charset.mem cs (Char.chr b) then 1 else 0 in
          if verdict.(cls) = -1 then verdict.(cls) <- m
          else if verdict.(cls) <> m then ok := false
        done;
        !ok
      in
      check (name ^ ": every label respected") true
        (List.for_all respects labels);
      let reps = Dfa.class_reps classmap nc in
      let separated c1 c2 =
        List.exists
          (fun cs ->
            Charset.mem cs (Char.chr reps.(c1))
            <> Charset.mem cs (Char.chr reps.(c2)))
          labels
      in
      let coarsest = ref true in
      for c1 = 0 to nc - 1 do
        for c2 = c1 + 1 to nc - 1 do
          if not (separated c1 c2) then coarsest := false
        done
      done;
      check (name ^ ": no two classes mergeable") true !coarsest)
    golden_grammars

(* ---- golden corpus parity: dense vs classed, batch + chunked ---- *)

let engines_of rules =
  match
    ( Engine.compile (Dfa.of_rules rules),
      Engine.compile (Dfa.of_rules ~classes:false rules) )
  with
  | Ok classed, Ok dense -> Some (classed, dense)
  | Error Engine.Unbounded_tnd, Error Engine.Unbounded_tnd -> None
  | _ -> Alcotest.fail "classed/dense disagree on max-TND boundedness"

let same_run (t1, o1) (t2, o2) = Gen.same_tokens t1 t2 && Engine.outcome_equal o1 o2

let token_ends toks =
  let pos = ref 0 in
  List.map
    (fun (lex, _) ->
      pos := !pos + String.length lex;
      !pos)
    toks

(* Batch dense is the oracle; classed must match it batch-wise and under
   every adversarial chunking (straddles shift the cut one byte before/on/
   after each token end, so pending-token + lookahead state always crosses
   the boundary). Chunked runs only retain O(K) pending bytes on failure,
   so compare them against the *chunked dense* run — byte-identical. *)
let check_grammar_on_input name classed dense input =
  let ref_run = Engine.tokens dense input in
  let classed_run = Engine.tokens classed input in
  if not (same_run ref_run classed_run) then
    Alcotest.failf "%s: batch classed differs from dense" name;
  let ends = token_ends (fst ref_run) in
  let rng = Prng.create 0x5EEDL in
  let delay = max 1 (Engine.k dense) in
  List.iter
    (fun (cname, ch) ->
      let c = Chunking.apply classed input ch in
      let d = Chunking.apply dense input ch in
      if not (same_run d c) then
        Alcotest.failf "%s: chunking %s classed differs from dense" name cname)
    (Chunking.standard ~rng ~token_ends:ends ~delay (String.length input))

let workload_names =
  [
    "json"; "csv"; "tsv"; "xml"; "yaml"; "fasta"; "dns-zone"; "log"; "ini";
    "toml"; "http-headers";
  ]

let test_golden_grammars () =
  List.iter
    (fun g ->
      let name = g.Grammar.name in
      match engines_of (Grammar.rules g) with
      | None -> ()
      | Some (classed, dense) ->
          let input =
            match Gen_data.by_name name with
            | Some gen -> gen ~seed:0x60D1DL ~target_bytes:20_000 ()
            | None ->
                (* no matching generator: a token-dense DFA walk *)
                Fuzz.Gen.token_dense
                  (Prng.create 0xDA7AL)
                  (Engine.dfa classed) ~target_len:20_000
          in
          check_grammar_on_input name classed dense input)
    golden_grammars

(* Every workload generator's output, including the ones with no matching
   grammar, pushed through a fixed grammar pair (json: K = 2, TE-mode) —
   most of these fail to tokenize partway, which is exactly the parity case
   the batch tests above don't cover at scale. *)
let test_golden_workloads_cross () =
  match engines_of (Grammar.rules Formats.json) with
  | None -> Alcotest.fail "json grammar must stream"
  | Some (classed, dense) ->
      List.iter
        (fun wname ->
          let gen = Option.get (Gen_data.by_name wname) in
          let input = gen ~seed:7L ~target_bytes:8_000 () in
          check_grammar_on_input ("json<-" ^ wname) classed dense input)
        workload_names

let suite =
  [
    Alcotest.test_case "classmap well-formed" `Quick test_classmap_wellformed;
    Alcotest.test_case "classmap deterministic" `Quick
      test_classmap_deterministic;
    Alcotest.test_case "dense build is identity" `Quick
      test_dense_build_is_identity;
    Alcotest.test_case "coarsest partition" `Quick test_coarsest_partition;
    Alcotest.test_case "golden grammars parity" `Quick test_golden_grammars;
    Alcotest.test_case "workload cross parity" `Quick
      test_golden_workloads_cross;
  ]
