open Streamtok

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_nfa_structure () =
  let rules = Parser.parse_grammar "a+\nb" in
  let nfa = Nfa.of_rules rules in
  check "has states" true (nfa.Nfa.num_states > 2);
  let finals =
    Array.to_list nfa.Nfa.accept_rule |> List.filter (fun r -> r >= 0)
  in
  check_int "one accept per rule" 2 (List.length finals)

let test_dfa_basic () =
  let d = Dfa.of_grammar "[0-9]\n[ ]" in
  (* Fig. 1 left: start, reject, space-final, digit-final *)
  check_int "four states" 4 (Dfa.size d);
  let q_digit = Dfa.run d "5" in
  check_int "digit rule" 0 (Dfa.accept_rule d q_digit);
  let q_space = Dfa.run d " " in
  check_int "space rule" 1 (Dfa.accept_rule d q_space);
  check "digit-digit rejects" false (Dfa.is_final d (Dfa.run d "55"));
  let coacc = Dfa.co_accessible d in
  check "reject state detected" true (Dfa.is_reject d coacc (Dfa.run d "xx"))

let test_dfa_priority () =
  (* equal-length match must take least rule index *)
  let d = Dfa.of_grammar "ab\na[b]" in
  let q = Dfa.run d "ab" in
  check_int "least rule wins" 0 (Dfa.accept_rule d q)

let test_dfa_totality () =
  let d = Dfa.of_grammar "abc" in
  (* every state has a transition for every byte *)
  let ok = ref true in
  for q = 0 to Dfa.size d - 1 do
    for c = 0 to 255 do
      let q' = Dfa.step d q (Char.chr c) in
      if q' < 0 || q' >= Dfa.size d then ok := false
    done
  done;
  check "total" true !ok

let test_max_states_cap () =
  let rules = Parser.parse_grammar "[0-9]+(\\.[0-9]+)?\n[ \\t]+\n[a-z]+" in
  (* The cap binds during subset construction, before minimization, so
     measure against the unminimized size: a cap at exactly that size
     succeeds and builds the identical automaton; one state less must
     abort with a Failure naming the cap. *)
  let d = Dfa.of_rules ~minimize:false rules in
  let capped = Dfa.of_rules ~minimize:false ~max_states:(Dfa.size d) rules in
  check_int "cap = size succeeds" (Dfa.size d) (Dfa.size capped);
  (match Dfa.of_rules ~minimize:false ~max_states:(Dfa.size d - 1) rules with
  | exception Failure msg ->
      check "message names the cap" true
        (let sub = string_of_int (Dfa.size d - 1) in
         let n = String.length msg and m = String.length sub in
         let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
         go 0)
  | _ -> Alcotest.fail "expected Failure from exceeded cap");
  (* The cap threads through the engine compile path too. *)
  match Engine.compile_rules ~max_states:1 rules with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure from Engine.compile_rules cap"

let test_minimization_shrinks () =
  let rules = Parser.parse_grammar "(a|b)(a|b)\n(aa|ab|ba|bb)c" in
  let d_min = Dfa.of_rules ~minimize:true rules in
  let d_raw = Dfa.of_rules ~minimize:false rules in
  check "minimized not larger" true (Dfa.size d_min <= Dfa.size d_raw)

let test_minimization_preserves_language () =
  let grammars = [ "a+b\nc"; "[0-9]+(\\.[0-9]+)?\n[ ]+"; "(ab)*\nb+a" ] in
  List.iter
    (fun src ->
      let rules = Parser.parse_grammar src in
      let d_min = Dfa.of_rules ~minimize:true rules in
      let d_raw = Dfa.of_rules ~minimize:false rules in
      let rng = Prng.create 7L in
      for _ = 1 to 500 do
        let len = Prng.int rng 10 in
        let s =
          String.init len (fun _ ->
              [| 'a'; 'b'; 'c'; '0'; '9'; '.'; ' ' |].(Prng.int rng 7))
        in
        let qm = Dfa.run d_min s and qr = Dfa.run d_raw s in
        if Dfa.accept_rule d_min qm <> Dfa.accept_rule d_raw qr then
          Alcotest.failf "minimization changed language of %s on %S" src s
      done)
    grammars;
  check "ok" true true

let test_reachable_nonempty () =
  let d = Dfa.of_grammar "a" in
  let rne = Dfa.reachable_nonempty d in
  (* the start state of this grammar is not reachable via a nonempty word *)
  check "start not included" false (St_util.Bits.mem rne d.Dfa.start);
  check "a-state included" true (St_util.Bits.mem rne (Dfa.run d "a"))

let test_reachable_nonempty_loop () =
  (* here the start state is re-entered on 'b' after 'a': (ab)* *)
  let d = Dfa.of_grammar "(ab)*c" in
  let rne = Dfa.reachable_nonempty d in
  check "start re-entered" true (St_util.Bits.mem rne (Dfa.run d "ab"))

(* Differential: DFA acceptance ≡ naive derivative matcher. *)
let prop_dfa_matches_naive =
  QCheck.Test.make ~count:300 ~name:"DFA run ≡ derivative matcher"
    Gen.grammar_input_arb (fun (rules, s) ->
      let d = Dfa.of_rules rules in
      let q = Dfa.run d s in
      let dfa_rule = if s = "" then -1 else Dfa.accept_rule d q in
      let naive_rule =
        if s = "" then -1
        else
          let rec first i = function
            | [] -> -1
            | r :: rest -> if Naive.matches r s then i else first (i + 1) rest
          in
          first 0 rules
      in
      dfa_rule = naive_rule)

(* Differential: minimization preserves the tokenization function. *)
let prop_minimize_preserves_tokens =
  QCheck.Test.make ~count:200 ~name:"minimize preserves tokens"
    Gen.grammar_input_arb (fun (rules, s) ->
      let tmin, _ = Backtracking.tokens (Dfa.of_rules ~minimize:true rules) s in
      let traw, _ = Backtracking.tokens (Dfa.of_rules ~minimize:false rules) s in
      Gen.same_tokens tmin traw)

let suite =
  [
    Alcotest.test_case "NFA structure" `Quick test_nfa_structure;
    Alcotest.test_case "DFA basics (Fig. 1)" `Quick test_dfa_basic;
    Alcotest.test_case "rule priority" `Quick test_dfa_priority;
    Alcotest.test_case "totality" `Quick test_dfa_totality;
    Alcotest.test_case "max-states cap" `Quick test_max_states_cap;
    Alcotest.test_case "minimization shrinks" `Quick test_minimization_shrinks;
    Alcotest.test_case "minimization preserves language" `Quick
      test_minimization_preserves_language;
    Alcotest.test_case "reachable-nonempty" `Quick test_reachable_nonempty;
    Alcotest.test_case "reachable-nonempty loop" `Quick
      test_reachable_nonempty_loop;
    QCheck_alcotest.to_alcotest prop_dfa_matches_naive;
    QCheck_alcotest.to_alcotest prop_minimize_preserves_tokens;
  ]
