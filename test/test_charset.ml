open Streamtok

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_empty_full () =
  check "empty has no members" true (Charset.is_empty Charset.empty);
  check "full is not empty" false (Charset.is_empty Charset.full);
  check_int "full has 256 members" 256 (Charset.cardinal Charset.full);
  for i = 0 to 255 do
    check "full mem" true (Charset.mem Charset.full (Char.chr i));
    check "empty mem" false (Charset.mem Charset.empty (Char.chr i))
  done

let test_singleton () =
  let s = Charset.singleton 'x' in
  check "mem x" true (Charset.mem s 'x');
  check "not mem y" false (Charset.mem s 'y');
  check_int "cardinal" 1 (Charset.cardinal s)

let test_range () =
  let s = Charset.range 'a' 'f' in
  check_int "cardinal" 6 (Charset.cardinal s);
  check "a" true (Charset.mem s 'a');
  check "f" true (Charset.mem s 'f');
  check "g" false (Charset.mem s 'g');
  check "`" false (Charset.mem s '`')

let test_range_single () =
  let s = Charset.range 'q' 'q' in
  check_int "cardinal" 1 (Charset.cardinal s)

let test_union_inter_diff () =
  let a = Charset.range 'a' 'm' and b = Charset.range 'h' 'z' in
  check_int "union" 26 (Charset.cardinal (Charset.union a b));
  check_int "inter" 6 (Charset.cardinal (Charset.inter a b));
  check_int "diff" 7 (Charset.cardinal (Charset.diff a b));
  check "union assoc member" true (Charset.mem (Charset.union a b) 'z')

let test_negate () =
  let s = Charset.of_string "abc" in
  let n = Charset.negate s in
  check "not a" false (Charset.mem n 'a');
  check "d" true (Charset.mem n 'd');
  check_int "cardinal" 253 (Charset.cardinal n);
  check "double negation" true (Charset.equal s (Charset.negate n))

let test_word_boundary_bytes () =
  (* members at the word boundaries of the int64 representation *)
  let s = Charset.of_list [ '\x3f'; '\x40'; '\x7f'; '\x80'; '\xbf'; '\xc0'; '\xff'; '\x00' ] in
  check_int "cardinal" 8 (Charset.cardinal s);
  List.iter
    (fun c -> check "mem" true (Charset.mem s c))
    [ '\x3f'; '\x40'; '\x7f'; '\x80'; '\xbf'; '\xc0'; '\xff'; '\x00' ]

let test_named_classes () =
  check_int "digit" 10 (Charset.cardinal Charset.digit);
  check_int "alpha" 52 (Charset.cardinal Charset.alpha);
  check_int "word" 63 (Charset.cardinal Charset.word);
  check "space has tab" true (Charset.mem Charset.space '\t');
  check "any excludes newline" false (Charset.mem Charset.any '\n');
  check_int "any" 255 (Charset.cardinal Charset.any)

let test_choose () =
  check "choose empty" true (Charset.choose Charset.empty = None);
  check "choose digit" true (Charset.choose Charset.digit = Some '0')

let test_iter_fold () =
  let count = ref 0 in
  Charset.iter (fun _ -> incr count) Charset.digit;
  check_int "iter visits all" 10 !count;
  let sum = Charset.fold (fun c acc -> acc + Char.code c) Charset.digit 0 in
  check_int "fold sum of digit codes" (10 * 48 + 45) sum

let test_roundtrip_print_parse () =
  (* printing a class and re-parsing it yields the same set *)
  let cases =
    [
      Charset.digit;
      Charset.word;
      Charset.negate Charset.word;
      Charset.of_string "a-c]^\\";
      Charset.of_string "\x00\x01\xfe\xff";
      Charset.range ' ' '~';
      (* fuzzer-found: the full and empty sets used to print as "[^]"/"[]",
         which the parser rejects *)
      Charset.negate Charset.empty;
      Charset.empty;
    ]
  in
  List.iter
    (fun s ->
      let printed = Charset.to_string s in
      match Parser.parse printed with
      | Regex.Cls s' ->
          check (Printf.sprintf "roundtrip %s" printed) true (Charset.equal s s')
      | _ -> Alcotest.failf "parse of %s not a class" printed)
    cases

let test_hash_equal_consistent () =
  let a = Charset.of_string "xyz" in
  let b = Charset.union (Charset.singleton 'x') (Charset.of_string "yz") in
  check "equal" true (Charset.equal a b);
  check_int "hash equal" (Charset.hash a) (Charset.hash b)

let suite =
  [
    Alcotest.test_case "empty/full" `Quick test_empty_full;
    Alcotest.test_case "singleton" `Quick test_singleton;
    Alcotest.test_case "range" `Quick test_range;
    Alcotest.test_case "range single" `Quick test_range_single;
    Alcotest.test_case "union/inter/diff" `Quick test_union_inter_diff;
    Alcotest.test_case "negate" `Quick test_negate;
    Alcotest.test_case "word-boundary bytes" `Quick test_word_boundary_bytes;
    Alcotest.test_case "named classes" `Quick test_named_classes;
    Alcotest.test_case "choose" `Quick test_choose;
    Alcotest.test_case "iter/fold" `Quick test_iter_fold;
    Alcotest.test_case "print/parse roundtrip" `Quick test_roundtrip_print_parse;
    Alcotest.test_case "hash/equal" `Quick test_hash_equal_consistent;
  ]
