#!/bin/sh
# Tier-1 gate (see ROADMAP.md): full build, the whole test suite, and the
# ~2 s observability smoke check — instrumented-runner parity plus its
# overhead budget (target <=2%, hard gate 10% to absorb CI timing noise).
set -e
cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== bench smoke (instrumented-runner parity + overhead)"
dune exec bench/main.exe -- smoke

echo "== check.sh OK"
