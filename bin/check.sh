#!/bin/sh
# Tier-1 gate (see ROADMAP.md): full build, the whole test suite, the
# ~2 s observability smoke check — instrumented-runner parity plus its
# overhead budget (target <=2%, hard gate 10% to absorb CI timing noise) —
# and the differential-fuzzing smoke gate: a seeded `streamtok fuzz --smoke`
# must find zero mismatches, and an artificially injected engine bug must be
# caught and shrunk to a <=64-byte repro (the find->shrink->repro pipeline
# proves itself on every run).
set -e
cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== bench smoke (instrumented-runner parity + overhead)"
dune exec bench/main.exe -- smoke

echo "== fuzz smoke (differential battery, seeded + deterministic)"
dune exec -- streamtok fuzz --smoke --seed 42

echo "== fuzz self-test (injected engine bug must be caught and shrunk)"
tmpd=$(mktemp -d)
if dune exec -- streamtok fuzz --iters 2 --seconds 0 --seed 7 --inject-bug \
    --corpus-dir "$tmpd" > /dev/null 2>&1; then
  echo "fuzz self-test FAILED: injected bug not caught"
  rm -rf "$tmpd"
  exit 1
fi
for f in "$tmpd"/*.repro; do
  hex=$(grep 'input-hex:' "$f" | awk '{print $2}')
  if [ "${#hex}" -gt 128 ]; then
    echo "fuzz self-test FAILED: repro not shrunk to <=64 bytes: $f"
    rm -rf "$tmpd"
    exit 1
  fi
done
rm -rf "$tmpd"

echo "== check.sh OK"
