#!/bin/sh
# Tier-1 gate (see ROADMAP.md): full build, the whole test suite, the
# ~2 s observability smoke check — instrumented-runner parity plus its
# overhead budget (target <=2%, hard gate 10% to absorb CI timing noise) —
# and the differential-fuzzing smoke gate: a seeded `streamtok fuzz --smoke`
# must find zero mismatches, and an artificially injected engine bug must be
# caught and shrunk to a <=64-byte repro (the find->shrink->repro pipeline
# proves itself on every run).
set -e
cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== bench smoke (instrumented-runner parity + overhead, disabled-tracer cost)"
dune exec bench/main.exe -- smoke

echo "== trace gate (enabled-tracer overhead <=15%, serve-span attribution >=90%)"
# Hard checks live inside the bench: token-count parity with the tracer
# recording, the enabled-tracer overhead gate on the chunked words
# workload, a non-empty state-heat table from the instrumented heat
# runner, and >=90% of a traced loopback serve run's wall time attributed
# by the span-tree report.
dune exec bench/main.exe -- trace

echo "== compress gate (classed/dense parity + classed tables <= dense bytes)"
# Hard checks live inside the bench: same minimal DFA size, byte-identical
# token streams on workload data, classed <= dense bytes per grammar, and
# the >=4x corpus-wide byte-reduction floor. Throughput timing is skipped
# here to keep the gate fast and CI-noise-free.
dune exec bench/main.exe -- compress-check

echo "== accel gate (skip-loop parity + analysis coverage + skip ratios)"
# Hard checks live inside the bench: byte-identical accel/noaccel token
# streams on every corpus grammar and synthetic workload, at least one
# accelerable state per bounded corpus grammar, and >=50% skip ratio on
# the run-heavy workloads. Throughput timing (speedup floor, run-poor
# overhead gate) is skipped here to keep the gate fast and CI-noise-free.
dune exec bench/main.exe -- accel-check

echo "== swar gate (SWAR classification, 3-way parity, quick speedup floor)"
# Hard checks live inside the bench: the words and json-strings workloads
# must classify at least one SWAR state, the SWAR / bitmap-only / noaccel
# builds must produce byte-identical token streams, >=50% of skipped
# bytes must flow through SWAR-classified scans, and a best-of-3 timing
# must clear a lenient 1.5x SWAR-vs-bitmap floor (the full `bench accel`
# enforces the hard 2x gate).
dune exec bench/main.exe -- swar-check

# The stats surface must expose the classification: a json run carries at
# least one state in the SWAR tier.
swar_states=$(dune exec -- streamtok stats json < /dev/null \
  | grep -o '"name":"accel_swar_states","type":"gauge","value":[0-9]*' \
  | grep -o '[0-9]*$' || true)
if [ -z "$swar_states" ] || [ "$swar_states" -lt 1 ]; then
  echo "swar gate FAILED: stats json reports no SWAR states"
  dune exec -- streamtok stats json < /dev/null || true
  exit 1
fi

echo "== bpe gate (vendored-vocab drift, audit, parity vs merge loop, bounded K)"
# Hard checks live inside the bench: the vendored vocabulary must equal
# Trainer.mini (), pass the munch-consistency audit, and the DFA engine's
# token ids must equal the reference merge-loop encoder on every parity
# input, batch and chunked. Throughput timing is skipped here.
dune exec bench/main.exe -- bpe-check

echo "== bpe analyze smoke (finite max-TND at vocab scale)"
out=$(dune exec -- streamtok bpe analyze test/vocab/mini.tiktoken)
echo "$out" | grep '^max-TND:'
if ! echo "$out" | grep -q '^max-TND:   [0-9][0-9]*$'; then
  echo "bpe analyze FAILED: max-TND not finite"
  echo "$out"
  exit 1
fi

echo "== fuzz smoke (differential battery, seeded + deterministic)"
dune exec -- streamtok fuzz --smoke --seed 42

echo "== fuzz self-test (injected engine bug must be caught and shrunk)"
tmpd=$(mktemp -d)
if dune exec -- streamtok fuzz --iters 2 --seconds 0 --seed 7 --inject-bug \
    --corpus-dir "$tmpd" > /dev/null 2>&1; then
  echo "fuzz self-test FAILED: injected bug not caught"
  rm -rf "$tmpd"
  exit 1
fi
for f in "$tmpd"/*.repro; do
  hex=$(grep 'input-hex:' "$f" | awk '{print $2}')
  if [ "${#hex}" -gt 128 ]; then
    echo "fuzz self-test FAILED: repro not shrunk to <=64 bytes: $f"
    rm -rf "$tmpd"
    exit 1
  fi
done
rm -rf "$tmpd"

echo "== serve smoke (daemon parity, zero-copy decode, engine cache, client abort, SIGTERM drain)"
# Use the installed binary directly: the daemon and clients run
# concurrently, and parallel `dune exec` invocations would fight over the
# build lock.
BIN=_build/install/default/bin/streamtok
tmpd=$(mktemp -d)
sock="$tmpd/st.sock"
"$BIN" serve --socket "$sock" --idle-timeout 30 > "$tmpd/serve.log" 2>&1 &
srv=$!
i=0
while [ ! -S "$sock" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "serve smoke FAILED: daemon did not come up"
    cat "$tmpd/serve.log"
    rm -rf "$tmpd"
    exit 1
  fi
  sleep 0.1
done

# first contact: a small straddle-free run must record zero decoder
# copies — every frame fits the fresh decoder buffer whole, so the
# zero-copy view path never has to compact or grow with live bytes.
# (The larger runs below use 64 KiB FEED frames, which legitimately
# force buffer growth, so this must be the first client the daemon
# sees.)
"$BIN" gen json --bytes 2000 --seed 3 > "$tmpd/small.json"
"$BIN" client --socket "$sock" json "$tmpd/small.json" --stats \
  > /dev/null 2> "$tmpd/stats0.json"
if ! grep -q '"name":"decoder_copies","type":"counter","value":0[,}]' \
  "$tmpd/stats0.json"; then
  echo "serve smoke FAILED: decoder copied bytes on a straddle-free run"
  cat "$tmpd/stats0.json"
  rm -rf "$tmpd"
  exit 1
fi

"$BIN" gen json --bytes 200000 --seed 9 > "$tmpd/in.json"
"$BIN" tokenize json "$tmpd/in.json" > "$tmpd/ref.out"

# 3 concurrent same-grammar sessions, each byte-for-byte identical to
# batch tokenize
"$BIN" client --socket "$sock" json "$tmpd/in.json" > "$tmpd/out.1" &
c1=$!
"$BIN" client --socket "$sock" json "$tmpd/in.json" > "$tmpd/out.2" &
c2=$!
"$BIN" client --socket "$sock" json "$tmpd/in.json" > "$tmpd/out.3" &
c3=$!
clients_failed=0
for job in "$c1" "$c2" "$c3"; do
  wait "$job" || clients_failed=1
done
if [ "$clients_failed" -ne 0 ]; then
  echo "serve smoke FAILED: a client exited non-zero"
  rm -rf "$tmpd"
  exit 1
fi
for n in 1 2 3; do
  if ! cmp -s "$tmpd/ref.out" "$tmpd/out.$n"; then
    echo "serve smoke FAILED: client $n output differs from tokenize"
    rm -rf "$tmpd"
    exit 1
  fi
done

# kill a client mid-stream: the daemon must stay up and drop the session
fifo="$tmpd/fifo"
mkfifo "$fifo"
"$BIN" client --socket "$sock" json < "$fifo" > /dev/null 2>&1 &
cpid=$!
exec 9> "$fifo"
head -c 1000 "$tmpd/in.json" >&9
sleep 0.3
kill -9 "$cpid" 2> /dev/null || true
exec 9>&-
wait "$cpid" 2> /dev/null || true
sleep 0.3
if ! kill -0 "$srv" 2> /dev/null; then
  echo "serve smoke FAILED: daemon died after client abort"
  rm -rf "$tmpd"
  exit 1
fi

# one STATS probe: the aborted session must be evicted (only the probe's
# own session is live) and N same-grammar sessions must have cost exactly
# one engine compile
"$BIN" client --socket "$sock" json "$tmpd/in.json" --stats \
  > /dev/null 2> "$tmpd/stats.json"
if ! grep -q '"name":"engine_cache_compiles","type":"counter","value":1[,}]' \
  "$tmpd/stats.json"; then
  echo "serve smoke FAILED: expected exactly one engine compile"
  cat "$tmpd/stats.json"
  rm -rf "$tmpd"
  exit 1
fi
if ! grep -q '"name":"sessions","type":"gauge","value":1[,}]' \
  "$tmpd/stats.json"; then
  echo "serve smoke FAILED: aborted session not evicted"
  cat "$tmpd/stats.json"
  rm -rf "$tmpd"
  exit 1
fi

# BPE token-id session: OPEN_BPE + IDS frames through the daemon must
# equal the local engine's `tokenize --ids` on the same input. (After the
# cache probe: the BPE engine is a second cache entry.)
"$BIN" tokenize bpe:test/vocab/mini.tiktoken "$tmpd/small.json" --ids \
  > "$tmpd/ids.ref"
"$BIN" client --socket "$sock" bpe:test/vocab/mini.tiktoken \
  "$tmpd/small.json" --ids > "$tmpd/ids.out"
if ! cmp -s "$tmpd/ids.ref" "$tmpd/ids.out"; then
  echo "serve smoke FAILED: BPE ids over the wire differ from tokenize --ids"
  rm -rf "$tmpd"
  exit 1
fi

# SIGTERM: drain and exit 0, unlinking the socket
kill -TERM "$srv"
if ! wait "$srv"; then
  echo "serve smoke FAILED: daemon did not exit 0 on SIGTERM"
  rm -rf "$tmpd"
  exit 1
fi
if [ -e "$sock" ]; then
  echo "serve smoke FAILED: socket file left behind"
  rm -rf "$tmpd"
  exit 1
fi
rm -rf "$tmpd"

echo "== shard check (--domains 2: parity, pool stats, client abort, SIGTERM drain)"
# The sharded daemon must be indistinguishable from --domains 1 on the
# wire: same client output bytes (checked against batch tokenize, which
# the single-domain leg above also matched), one engine compile pool-wide
# through the shared cache, and the same abort/drain behavior — a killed
# client takes down neither its worker domain nor the acceptor.
tmpd=$(mktemp -d)
sock="$tmpd/st.sock"
"$BIN" serve --socket "$sock" --domains 2 --idle-timeout 30 \
  > "$tmpd/serve.log" 2>&1 &
srv=$!
i=0
while [ ! -S "$sock" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "shard check FAILED: sharded daemon did not come up"
    cat "$tmpd/serve.log"
    rm -rf "$tmpd"
    exit 1
  fi
  sleep 0.1
done
if ! grep -q "2 domains" "$tmpd/serve.log"; then
  echo "shard check FAILED: daemon did not report 2 domains"
  cat "$tmpd/serve.log"
  rm -rf "$tmpd"
  exit 1
fi

"$BIN" gen json --bytes 200000 --seed 9 > "$tmpd/in.json"
"$BIN" tokenize json "$tmpd/in.json" > "$tmpd/ref.out"

# 4 concurrent sessions land 2 on each worker domain (round-robin)
for n in 1 2 3 4; do
  "$BIN" client --socket "$sock" json "$tmpd/in.json" > "$tmpd/out.$n" &
  eval "c$n=\$!"
done
clients_failed=0
for job in "$c1" "$c2" "$c3" "$c4"; do
  wait "$job" || clients_failed=1
done
if [ "$clients_failed" -ne 0 ]; then
  echo "shard check FAILED: a client exited non-zero"
  rm -rf "$tmpd"
  exit 1
fi
for n in 1 2 3 4; do
  if ! cmp -s "$tmpd/ref.out" "$tmpd/out.$n"; then
    echo "shard check FAILED: client $n output differs from tokenize"
    rm -rf "$tmpd"
    exit 1
  fi
done

# kill -9 a mid-stream client: the owning worker domain must survive
fifo="$tmpd/fifo"
mkfifo "$fifo"
"$BIN" client --socket "$sock" json < "$fifo" > /dev/null 2>&1 &
cpid=$!
exec 9> "$fifo"
head -c 1000 "$tmpd/in.json" >&9
sleep 0.3
kill -9 "$cpid" 2> /dev/null || true
exec 9>&-
wait "$cpid" 2> /dev/null || true
sleep 0.3
if ! kill -0 "$srv" 2> /dev/null; then
  echo "shard check FAILED: sharded daemon died after client abort"
  cat "$tmpd/serve.log"
  rm -rf "$tmpd"
  exit 1
fi

# pool-wide STATS from any worker: 4 same-grammar sessions across both
# workers cost exactly one compile (shared cache), and the vectored
# write path is live (writev consumptions counted)
"$BIN" client --socket "$sock" json "$tmpd/in.json" --stats \
  > /dev/null 2> "$tmpd/stats.json"
if ! grep -q '"name":"engine_cache_compiles","type":"counter","value":1[,}]' \
  "$tmpd/stats.json"; then
  echo "shard check FAILED: expected exactly one compile pool-wide"
  cat "$tmpd/stats.json"
  rm -rf "$tmpd"
  exit 1
fi
if grep -q '"name":"writevs","type":"counter","value":0[,}]' \
  "$tmpd/stats.json"; then
  echo "shard check FAILED: vectored write path never used"
  cat "$tmpd/stats.json"
  rm -rf "$tmpd"
  exit 1
fi

# SIGTERM: stop accepting, drain both workers, exit 0, unlink the socket
kill -TERM "$srv"
if ! wait "$srv"; then
  echo "shard check FAILED: sharded daemon did not exit 0 on SIGTERM"
  rm -rf "$tmpd"
  exit 1
fi
if [ -e "$sock" ]; then
  echo "shard check FAILED: socket file left behind"
  rm -rf "$tmpd"
  exit 1
fi
rm -rf "$tmpd"

echo "== check.sh OK"
