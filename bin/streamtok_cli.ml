(* streamtok: command-line front end.

   Subcommands:
     list                          list built-in grammars
     analyze  <grammar>            static analysis (sizes, max-TND, witness)
     stats    <grammar>            compile-time analysis as machine-readable JSON
     tokenize <grammar> [FILE]     tokenize a file or stdin (--ids: token ids)
     bpe      analyze|train        BPE vocabularies: audit + max-TND, training
     gen      <format>             generate a synthetic workload
     fuzz     [REPRO...]           differential fuzzing / repro replay
     convert  <app> [FILE]         run an RQ5 application pipeline

   `tokenize` and `convert` accept --stats[=FILE] / --stats-format=json|prom
   to dump run-time statistics (see README §Observability for the schema). *)

open Streamtok
open Cmdliner

let read_all ic =
  let buf = Buffer.create 65536 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    let n = input ic chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let read_input = function
  | None -> read_all stdin
  | Some path ->
      let ic = open_in_bin path in
      let s = read_all ic in
      close_in ic;
      s

(* A grammar argument is a built-in name, an inline grammar prefixed with
   '@' (rules separated by top-level ';' — a ';' inside a character class
   stays in its rule), a 'bpe:<vocab-file>' spec (audited and compiled to
   literal rules, rule index = token id), or a path to a grammar file.
   Names, inline bodies and ad-hoc sources go through Registry.resolve /
   Grammar.of_* — the same validated parse path the serve OPEN frame uses
   — so a malformed rule is always an Error naming it. Only the file
   lookups are CLI-local. *)
let bpe_spec spec =
  if String.length spec > 4 && String.sub spec 0 4 = "bpe:" then
    Some (String.sub spec 4 (String.length spec - 4))
  else None

let resolve_grammar spec =
  match bpe_spec spec with
  | Some path -> (
      match Bpe.Vocab.load_file path with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok v -> (
          match Bpe.Compiler.audit v with
          | Error w ->
              Error
                (Printf.sprintf "%s: vocabulary is not munch-consistent — %s"
                   path
                   (Bpe.Compiler.witness_to_string w))
          | Ok () ->
              Ok
                (Bpe.Compiler.grammar_of_vocab
                   ~name:("bpe:" ^ Filename.basename path)
                   v)))
  | None -> (
      match Registry.find spec with
      | Some g -> Ok g
      | None ->
          if (String.length spec = 0 || spec.[0] <> '@') && Sys.file_exists spec
          then
            read_input (Some spec)
            |> Grammar.of_source ~name:(Filename.basename spec)
                 ~description:("grammar file " ^ spec)
            |> Result.map_error (fun e -> spec ^ ": " ^ e)
          else Registry.resolve spec)

let grammar_conv =
  let parse spec =
    match resolve_grammar spec with Ok g -> Ok g | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun fmt g -> Format.pp_print_string fmt g.Grammar.name)

let grammar_arg =
  Arg.(
    required
    & pos 0 (some grammar_conv) None
    & info [] ~docv:"GRAMMAR" ~doc:"Built-in grammar name, grammar file, or '@rule;rule'.")

(* ---- observability plumbing ---- *)

let stats_dest_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "stats" ] ~docv:"FILE"
        ~doc:
          "Record run statistics via the instrumented runner and write them \
           to $(docv) ('-' or no value: stderr, keeping stdout clean for \
           tokens).")

let stats_format_arg =
  Arg.(
    value
    & opt (enum [ ("json", `Json); ("prom", `Prom) ]) `Json
    & info [ "stats-format" ] ~docv:"FMT"
        ~doc:"Statistics format: compact $(b,json) or $(b,prom)etheus text.")

let write_stats ~dest ~format ~rule_name stats =
  let text =
    match format with
    | `Json -> Run_stats.to_json_string ~rule_name stats ^ "\n"
    | `Prom -> Run_stats.to_prometheus ~rule_name stats
  in
  match dest with
  | "-" -> output_string stderr text
  | path -> (
      match open_out path with
      | oc ->
          output_string oc text;
          close_out oc
      | exception Sys_error msg ->
          Printf.eprintf "error: cannot write stats: %s\n" msg;
          exit 1)

(* Uniform lexical-failure report: offset, resolved position, and a bounded
   preview of the untokenizable remainder — on stderr, so scripts can both
   detect the failure (exit 1) and capture the diagnostics. *)
let report_failure input offset pending =
  let loc = Location.resolve (Location.of_string input) offset in
  let preview =
    if String.length pending <= 32 then Printf.sprintf "%S" pending
    else Printf.sprintf "%S..." (String.sub pending 0 32)
  in
  Printf.eprintf "error: untokenizable input at offset %d (%s)\n" offset
    (Format.asprintf "%a" Location.pp loc);
  Printf.eprintf "pending (%d bytes): %s\n" (String.length pending) preview

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun g ->
        Printf.printf "%-14s %2d rules  %s\n" g.Grammar.name
          (Grammar.num_rules g) g.Grammar.description)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in grammars")
    Term.(const run $ const ())

(* ---- analyze ---- *)

let analyze_cmd =
  let explain =
    Arg.(value & flag & info [ "explain" ] ~doc:"Print the Fig. 3 frontier trace.")
  in
  let run g explain =
    let nfa_size = Grammar.nfa_size g in
    let d = Grammar.dfa g in
    Printf.printf "grammar:   %s (%d rules)\n" g.Grammar.name
      (Grammar.num_rules g);
    Printf.printf "NFA size:  %d\n" nfa_size;
    Printf.printf "DFA size:  %d\n" (Dfa.size d);
    let result, trace = Tnd.max_tnd_trace d in
    Printf.printf "max-TND:   %s\n" (Tnd.result_to_string result);
    (match result with
    | Tnd.Finite k when k > 0 -> (
        match Tnd.witness d k with
        | Some (u, v) ->
            Printf.printf "witness:   %S -> %S (distance %d)\n" u v
              (String.length v - String.length u)
        | None -> ())
    | Tnd.Infinite -> (
        match Tnd.witness d (Dfa.size d + 2) with
        | Some (u, v) ->
            Printf.printf
              "witness:   %S -> %S (distance %d; grows without bound)\n" u v
              (String.length v - String.length u)
        | None -> ())
    | _ -> ());
    (match result with
    | Tnd.Finite k ->
        Printf.printf "streaming: StreamTok applies (lookahead K = %d)\n" k
    | Tnd.Infinite ->
        print_endline
          "streaming: unbounded lookahead; StreamTok does not apply \
           (use the offline ExtOracle or flex-style backtracking)");
    if explain then begin
      print_endline "\nFig. 3 trace (dist, S, T, test):";
      List.iter
        (fun r ->
          Printf.printf "  dist=%-3d S={%s} T={%s} test=%b\n" r.Tnd.dist
            (String.concat "," (List.map string_of_int r.Tnd.s))
            (String.concat "," (List.map string_of_int r.Tnd.t))
            r.Tnd.test)
        trace
    end
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run the max-TND static analysis on a grammar")
    Term.(const run $ grammar_arg $ explain)

(* ---- stats ---- *)

let stats_cmd =
  let run g =
    let open Obs in
    let r = Metrics.Registry.create () in
    let gauge name help v =
      Metrics.Gauge.set_int (Metrics.Registry.gauge r ~help name) v
    in
    let span name help dt = Metrics.Span.add (Metrics.Registry.span r ~help name) dt in
    gauge "rules" "grammar rules" (Grammar.num_rules g);
    gauge "nfa_states" "rule-tagged Thompson NFA states" (Grammar.nfa_size g);
    let d, dfa_seconds = Timer.time_it (fun () -> Grammar.dfa g) in
    gauge "dfa_states" "minimized tokenization DFA states" (Dfa.size d);
    span "dfa_seconds" "subset construction + Moore minimization" dfa_seconds;
    let result, compile_seconds =
      Timer.time_it (fun () -> Engine.compile_timed d)
    in
    let streaming =
      match result with
      | Ok (e, cs) ->
          gauge "max_tnd" "maximum token neighbor distance"
            (match cs.Engine.max_tnd with Tnd.Finite k -> k | Tnd.Infinite -> -1);
          gauge "lookahead_k" "engine lookahead window" (Engine.k e);
          gauge "te_states" "token-extension powerstates materialized"
            cs.Engine.te_states;
          gauge "k1_table_bytes" "Fig. 5 maximality table size"
            cs.Engine.k1_table_bytes;
          gauge "footprint_bytes" "run-time tables + lookahead buffer"
            cs.Engine.footprint_bytes;
          gauge "accel_states" "accelerable self-loop (skip-scan) states"
            (Engine.accel_states e);
          gauge "accel_swar_states"
            "accelerable states in the SWAR (64-bit scan) tier"
            (Engine.accel_swar_states e);
          span "analysis_seconds" "max-TND frontier analysis"
            cs.Engine.analysis_seconds;
          span "build_seconds" "engine table construction"
            cs.Engine.build_seconds;
          true
      | Error Engine.Unbounded_tnd ->
          gauge "max_tnd" "maximum token neighbor distance (-1: unbounded)"
            (-1);
          span "analysis_seconds" "max-TND frontier analysis" compile_seconds;
          false
    in
    print_endline
      (Json.to_string
         (Json.Obj
            [
              ("schema", Json.String "streamtok/compile-stats/v1");
              ("grammar", Json.String g.Grammar.name);
              ("streaming", Json.Bool streaming);
              ("metrics", Export.registry_to_json r);
            ]))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Dump the compile-time analysis (sizes, max-TND, footprint, phase \
          timings) as machine-readable JSON")
    Term.(const run $ grammar_arg)

(* ---- tokenize ---- *)

let tokenize_cmd =
  let file =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"FILE" ~doc:"Input file (default stdin).")
  in
  let count_only =
    Arg.(value & flag & info [ "count" ] ~doc:"Print token counts per rule only.")
  in
  let ids_only =
    Arg.(
      value & flag
      & info [ "ids" ]
          ~doc:
            "Print the rule index (= BPE token id for $(b,bpe:) grammars), \
             one per line, instead of rule names and lexemes.")
  in
  let engine_flag =
    Arg.(
      value
      & opt (enum [ ("streamtok", `Streamtok); ("flex", `Flex) ]) `Streamtok
      & info [ "engine" ] ~doc:"Tokenizer: streamtok (default) or flex.")
  in
  let run g file count_only ids_only engine stats_dest stats_format =
    let input = read_input file in
    let d = Grammar.dfa g in
    let counts = Array.make (Grammar.num_rules g) 0 in
    let print_token ~pos ~len ~rule =
      if count_only then counts.(rule) <- counts.(rule) + 1
      else if ids_only then Printf.printf "%d\n" rule
      else
        Printf.printf "%-12s %S\n" (Grammar.rule_name g rule)
          (String.sub input pos len)
    in
    (* `trace record --heat` forces the instrumented runner (with state
       heat on) even without --stats, so the recording can carry a heat
       table. *)
    let want_heat = !Trace.heat_requested in
    let stats =
      if stats_dest <> None || want_heat then Some (Run_stats.create ())
      else None
    in
    (match stats with
    | Some st when want_heat ->
        Run_stats.enable_state_heat st ~states:(Dfa.size d)
    | _ -> ());
    let ok =
      match engine with
      | `Streamtok -> (
          match Engine.compile d with
          | Error Engine.Unbounded_tnd ->
              prerr_endline
                "error: grammar has unbounded max-TND; use --engine flex";
              exit 2
          | Ok e -> (
              let outcome =
                match stats with
                | None -> Engine.run_string_traced e input ~emit:print_token
                | Some st ->
                    Engine.run_string_instrumented e input ~stats:st
                      ~emit:print_token
              in
              (match stats with
              | Some st when want_heat ->
                  Trace.Heat.publish
                    (Engine.heat_table ~label:g.Grammar.name e st)
              | _ -> ());
              match outcome with
              | Engine.Finished -> true
              | Engine.Failed { offset; pending } ->
                  report_failure input offset pending;
                  false))
      | `Flex -> (
          let fm = Flex_model.compile d in
          let emit =
            match stats with
            | None -> print_token
            | Some st ->
                fun ~pos ~len ~rule ->
                  Run_stats.record_token st ~rule ~len;
                  print_token ~pos ~len ~rule
          in
          let (outcome, _), dt =
            Timer.time_it (fun () -> Flex_model.run fm input ~emit)
          in
          (match stats with
          | Some st ->
              Run_stats.add_chunk st (String.length input);
              Run_stats.add_run_seconds st dt
          | None -> ());
          match outcome with
          | Backtracking.Finished -> true
          | Backtracking.Failed { offset; pending } ->
              (match stats with
              | Some st -> Run_stats.record_failure st
              | None -> ());
              report_failure input offset pending;
              false)
    in
    if count_only then
      Array.iteri
        (fun rule c ->
          if c > 0 then Printf.printf "%-12s %d\n" (Grammar.rule_name g rule) c)
        counts;
    (match (stats, stats_dest) with
    | Some st, Some dest ->
        write_stats ~dest ~format:stats_format ~rule_name:(Grammar.rule_name g)
          st
    | _ -> ());
    if not ok then exit 1
  in
  Cmd.v (Cmd.info "tokenize" ~doc:"Tokenize a file or stdin")
    Term.(
      const run $ grammar_arg $ file $ count_only $ ids_only $ engine_flag
      $ stats_dest_arg $ stats_format_arg)

(* ---- bpe ---- *)

(* Loads + audits are CLI-local so `bpe analyze` can show partial results
   (vocab stats, the witness) where the grammar_conv path would just
   abort with the combined error string. *)
let load_vocab path =
  match Bpe.Vocab.load_file path with
  | Ok v -> v
  | Error e ->
      Printf.eprintf "error: %s: %s\n" path e;
      exit 2

let bpe_analyze_cmd =
  let vocab_file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"VOCAB"
          ~doc:"Vocabulary file: tiktoken lines ('<base64> <rank>') or a \
                JSON object mapping token strings to ids.")
  in
  let max_states =
    Arg.(
      value
      & opt int Bpe.Compiler.default_max_states
      & info [ "max-states" ] ~docv:"N"
          ~doc:"Abort subset construction past $(docv) DFA states.")
  in
  let run path max_states =
    let v = load_vocab path in
    Printf.printf "vocab:     %s (%d tokens, longest %d bytes)\n"
      (Filename.basename path) (Bpe.Vocab.size v)
      (Bpe.Vocab.max_token_len v);
    (match Bpe.Compiler.audit v with
    | Error w ->
        Printf.printf "audit:     NOT munch-consistent — %s\n"
          (Bpe.Compiler.witness_to_string w);
        print_endline
          "           (the greedy DFA would disagree with the merge loop; \
           drop the long token or retrain)";
        exit 1
    | Ok () ->
        print_endline
          "audit:     munch-consistent (greedy DFA = merge loop on every \
           input)");
    let d =
      match Bpe.Compiler.dfa ~audit:false ~max_states v with
      | Ok d -> d
      | Error e ->
          Printf.eprintf "error: %s\n" e;
          exit 1
    in
    Printf.printf "DFA size:  %d\n" (Dfa.size d);
    let result = Tnd.max_tnd d in
    Printf.printf "max-TND:   %s\n" (Tnd.result_to_string result);
    (match result with
    | Tnd.Finite k when k > 0 -> (
        match Tnd.witness d k with
        | Some (u, w) ->
            Printf.printf "witness:   %S -> %S (distance %d)\n" u w
              (String.length w - String.length u)
        | None -> ())
    | _ -> ());
    match Engine.compile_timed d with
    | Error Engine.Unbounded_tnd ->
        (* Unreachable for a finite vocabulary of literals, but keep the
           same shape as `analyze` rather than asserting. *)
        print_endline "streaming: unbounded lookahead; StreamTok does not apply";
        exit 1
    | Ok (e, cs) ->
        Printf.printf "streaming: StreamTok applies (lookahead K = %d)\n"
          (Engine.k e);
        Printf.printf "footprint: %d bytes (engine tables)\n"
          cs.Engine.footprint_bytes
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Audit a BPE vocabulary for munch-consistency and run the max-TND \
          analysis on its tokenization DFA")
    Term.(const run $ vocab_file $ max_states)

let bpe_train_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Output vocabulary file (tiktoken format).")
  in
  let tokens =
    Arg.(
      value & opt int 512
      & info [ "tokens" ] ~docv:"N" ~doc:"Target vocabulary size.")
  in
  let seed =
    Arg.(
      value & opt int 0x5eed
      & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed for the synthetic corpus.")
  in
  let corpus_bytes =
    Arg.(
      value & opt int 131072
      & info [ "corpus-bytes" ] ~docv:"B"
          ~doc:"Synthetic training corpus size in bytes.")
  in
  let mini =
    Arg.(
      value & flag
      & info [ "mini" ]
          ~doc:
            "Reproduce the vendored test vocabulary \
             (test/vocab/mini.tiktoken) exactly, ignoring the other knobs.")
  in
  let run out tokens seed corpus_bytes mini =
    let v =
      if mini then Bpe.Trainer.mini ()
      else
        let rng = Prng.create (Int64.of_int seed) in
        let corpus = Bpe.Trainer.gen_corpus rng corpus_bytes in
        let v = Bpe.Trainer.train ~corpus ~n_tokens:tokens in
        match Bpe.Trainer.repair v with
        | Ok v -> v
        | Error e ->
            Printf.eprintf "error: %s\n" e;
            exit 1
    in
    let oc = open_out_bin out in
    output_string oc (Bpe.Vocab.to_tiktoken v);
    close_out oc;
    Printf.printf "wrote %s (%d tokens, munch-consistent)\n" out
      (Bpe.Vocab.size v)
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:
         "Train a small BPE vocabulary on a seeded synthetic corpus and \
          repair it to munch-consistency (for tests and demos)")
    Term.(const run $ out $ tokens $ seed $ corpus_bytes $ mini)

let bpe_cmd =
  Cmd.group
    (Cmd.info "bpe"
       ~doc:
         "BPE vocabularies as grammars: consistency audit, max-TND \
          analysis, deterministic training")
    [ bpe_analyze_cmd; bpe_train_cmd ]

(* ---- compile ---- *)

let compile_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file for the compiled engine.")
  in
  let run g out =
    let d = Grammar.dfa g in
    match Engine.compile d with
    | Error Engine.Unbounded_tnd ->
        prerr_endline "error: grammar has unbounded max-TND; cannot compile a streaming engine";
        exit 2
    | Ok e ->
        let blob = Engine_io.to_string e in
        let oc = open_out_bin out in
        output_string oc blob;
        close_out oc;
        Printf.printf "compiled %s: K = %d, %d DFA states, %d bytes -> %s
"
          g.Grammar.name (Engine.k e)
          (Dfa.size (Engine.dfa e))
          (String.length blob) out
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Analyze a grammar and save the compiled engine tables")
    Term.(const run $ grammar_arg $ out)

(* ---- validate ---- *)

let validate_cmd =
  let file =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"JSON file (default stdin).")
  in
  let run file =
    let input = read_input file in
    let p = Tokenizer_backend.prepare Tokenizer_backend.Streamtok Formats.json in
    let ts = Token_stream.create () in
    if not (Token_stream.fill p input ts) then begin
      (* find the offset for a useful message *)
      let e =
        match Engine.compile (Grammar.dfa Formats.json) with
        | Ok e -> e
        | Error _ -> assert false
      in
      (match Engine.run_string e input ~emit:(fun ~pos:_ ~len:_ ~rule:_ -> ()) with
      | Engine.Failed { offset; _ } ->
          let loc = St_util.Location.resolve (St_util.Location.of_string input) offset in
          Printf.printf "invalid: lexical error at %s (offset %d)
"
            (Format.asprintf "%a" St_util.Location.pp loc)
            offset
      | Engine.Finished -> print_endline "invalid: lexical error");
      exit 1
    end;
    let v = Json_validate.create () in
    match Json_validate.validate v ts with
    | Json_validate.Valid ->
        Printf.printf "valid (max nesting depth %d, %d tokens)
"
          (Json_validate.max_depth v)
          (Token_stream.length ts)
    | Json_validate.Invalid { at_token; reason } ->
        if at_token >= 0 && at_token < Token_stream.length ts then begin
          let off = Token_stream.pos ts at_token in
          let loc = St_util.Location.resolve (St_util.Location.of_string input) off in
          Printf.printf "invalid: %s at %s (offset %d)
" reason
            (Format.asprintf "%a" St_util.Location.pp loc)
            off
        end
        else Printf.printf "invalid: %s
" reason;
        exit 1
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Streaming JSON syntax validation")
    Term.(const run $ file)

(* ---- gen ---- *)

let gen_cmd =
  let format =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FORMAT"
          ~doc:"json, csv, tsv, xml, yaml, fasta, dns-zone, log, \
                json-records, csv-typed, sql-inserts, or a log format name.")
  in
  let bytes =
    Arg.(value & opt int 1_000_000 & info [ "bytes" ] ~doc:"Target size.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let run format bytes seed =
    let seed = Int64.of_int seed in
    let data =
      match format with
      | "json-records" -> Gen_data.json_records ~seed ~target_bytes:bytes ()
      | "csv-typed" -> Gen_data.csv_typed ~seed ~target_bytes:bytes ()
      | "sql-inserts" -> Gen_data.sql_inserts ~seed ~target_bytes:bytes ()
      | f when List.mem f Gen_logs.formats ->
          Gen_logs.generate ~format:f ~seed ~target_bytes:bytes ()
      | f -> (
          match Gen_data.by_name f with
          | Some gen -> gen ~seed ~target_bytes:bytes ()
          | None ->
              Printf.eprintf "unknown format %s\n" f;
              exit 2)
    in
    print_string data
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a synthetic workload on stdout")
    Term.(const run $ format $ bytes $ seed)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let files =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REPRO"
          ~doc:"Repro files to replay instead of fuzzing (see test/corpus/).")
  in
  let iters =
    Arg.(
      value
      & opt int Fuzz.Driver.default.Fuzz.Driver.max_iters
      & info [ "iters" ] ~doc:"Grammar iterations.")
  in
  let seconds =
    Arg.(
      value
      & opt float Fuzz.Driver.default.Fuzz.Driver.max_seconds
      & info [ "seconds" ] ~doc:"Wall-clock budget (0 = unlimited).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let max_input =
    Arg.(
      value
      & opt int Fuzz.Driver.default.Fuzz.Driver.max_input_bytes
      & info [ "max-input" ] ~doc:"Maximum generated input size in bytes.")
  in
  let corpus_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus-dir" ] ~docv:"DIR"
          ~doc:"Write shrunk repro files for any mismatch into $(docv).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Quick deterministic preset (60 iterations, no time limit, \
             inputs ≤ 96 bytes) for CI gates.")
  in
  let inject_bug =
    Arg.(
      value & flag
      & info [ "inject-bug" ]
          ~doc:
            "Self-test: make the batch engine drop its final token; the \
             run must find and shrink the mismatch.")
  in
  let report =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Emit the streamtok/fuzz-report/v1 JSON document to $(docv) \
             (or stdout).")
  in
  let print_mismatch i (m : Fuzz.Differential.mismatch) =
    Printf.printf "mismatch %d: %s\n" i (Fuzz.Differential.show_mismatch m)
  in
  let replay files inject_bug =
    let failures = ref 0 in
    List.iter
      (fun path ->
        match Fuzz.Repro.load path with
        | Error msg ->
            incr failures;
            Printf.printf "%s: load error: %s\n" path msg
        | Ok repro -> (
            let r = Fuzz.Repro.check ~inject_bug repro in
            match r.Fuzz.Differential.mismatches with
            | [] ->
                Printf.printf "%s: ok (%d subjects%s)\n" path
                  r.Fuzz.Differential.subjects
                  (if r.Fuzz.Differential.streaming then "" else ", unbounded")
            | ms ->
                incr failures;
                Printf.printf "%s: %d mismatches\n" path (List.length ms);
                List.iteri print_mismatch ms))
      files;
    if !failures > 0 then exit 1
  in
  let run files iters seconds seed max_input corpus_dir smoke inject_bug report
      =
    if files <> [] then replay files inject_bug
    else begin
      let config =
        {
          Fuzz.Driver.default with
          Fuzz.Driver.seed;
          max_iters = (if smoke then 60 else iters);
          max_seconds = (if smoke then 0. else seconds);
          max_input_bytes = (if smoke then 96 else max_input);
          corpus_dir;
          inject_bug;
        }
      in
      let r = Fuzz.Driver.run config in
      print_endline (Fuzz.Driver.summary r);
      List.iteri
        (fun i (f : Fuzz.Driver.found) ->
          Printf.printf "mismatch %d: subject %s\n  grammar: %s\n  input: %S\n"
            i f.Fuzz.Driver.subject
            (String.concat " | "
               (List.map Regex.to_string f.Fuzz.Driver.rules))
            f.Fuzz.Driver.input;
          match f.Fuzz.Driver.repro_path with
          | Some p -> Printf.printf "  repro: %s\n" p
          | None -> ())
        r.Fuzz.Driver.found;
      (match report with
      | None -> ()
      | Some dest ->
          let doc = Obs.Json.to_string (Fuzz.Driver.report_to_json r) in
          if dest = "-" then print_endline doc
          else begin
            let oc = open_out dest in
            output_string oc doc;
            output_char oc '\n';
            close_out oc
          end);
      if r.Fuzz.Driver.found <> [] then exit 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing of all tokenizer implementations")
    Term.(
      const run $ files $ iters $ seconds $ seed $ max_input $ corpus_dir
      $ smoke $ inject_bug $ report)

(* ---- serve / client ---- *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let max_sessions =
    Arg.(
      value
      & opt int Serve.Server.default_config.Serve.Server.max_sessions
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:
            "Session-table capacity; above it new connections get a \
             retryable capacity error.")
  in
  let idle_timeout =
    Arg.(
      value
      & opt float Serve.Server.default_config.Serve.Server.idle_timeout
      & info [ "idle-timeout" ] ~docv:"S"
          ~doc:"Evict sessions idle for more than $(docv) seconds (0: never).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains. 1 (default): the classic single-threaded \
             select loop. N>1: one acceptor hands connections to $(docv) \
             worker domains round-robin; the engine cache is shared \
             (one compile per grammar pool-wide) and STATS aggregates \
             across the pool.")
  in
  let run socket max_sessions idle_timeout domains =
    let config =
      { Serve.Server.default_config with max_sessions; idle_timeout }
    in
    let on_listening () =
      if domains > 1 then
        Printf.printf "listening on %s (%d domains)\n%!" socket domains
      else Printf.printf "listening on %s\n%!" socket
    in
    match Serve.Shard.serve ~config ~on_listening ~domains ~socket () with
    | () -> ()
    | exception Unix.Unix_error (e, _, arg) ->
        Printf.eprintf "error: %s: %s\n" arg (Unix.error_message e);
        exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the tokenization daemon: one session per connection, engines \
          shared across same-grammar sessions (and across --domains worker \
          domains), SIGTERM drains and exits")
    Term.(const run $ socket_arg $ max_sessions $ idle_timeout $ domains)

let client_cmd =
  let grammar_spec =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"GRAMMAR"
          ~doc:
            "Built-in grammar name, grammar file, 'bpe:<vocab-file>', or \
             '@rule;rule' — files are read here and sent to the daemon as \
             grammar source (vocab files as an OPEN_BPE frame).")
  in
  let file =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"FILE" ~doc:"Input file (default: stream from stdin).")
  in
  let ids =
    Arg.(
      value & flag
      & info [ "ids" ]
          ~doc:
            "BPE sessions only: request token ids (IDS frames), printed one \
             per line. Requires a $(b,bpe:) grammar spec.")
  in
  let run socket spec file ids stats_dest stats_format =
    (* The daemon never touches client paths: resolve files to source
       locally, everything else is sent verbatim for Registry.resolve.
       A bpe: spec becomes an OPEN_BPE frame carrying the vocab text. *)
    let open_request =
      match bpe_spec spec with
      | Some path ->
          Some (Serve.Wire.Open_bpe { ids; vocab = read_input (Some path) })
      | None ->
          if ids then begin
            prerr_endline "error: --ids requires a bpe:<vocab-file> grammar";
            exit 2
          end;
          None
    in
    let grammar =
      if Registry.find spec <> None then spec
      else if (String.length spec = 0 || spec.[0] <> '@') && Sys.file_exists spec
      then begin
        let src = read_input (Some spec) in
        if String.contains src '\n' then src else src ^ "\n"
      end
      else spec
    in
    let input =
      match file with
      | None -> `Fd Unix.stdin
      | Some path -> `String (read_input (Some path))
    in
    let stats =
      Option.map
        (fun _ ->
          match stats_format with
          | `Json -> Serve.Wire.Json
          | `Prom -> Serve.Wire.Prom)
        stats_dest
    in
    let stats_dest =
      match stats_dest with Some "-" | None -> None | Some path -> Some path
    in
    let outcome =
      Serve.Client.run ~socket ~grammar ~input ?open_request ?stats ?stats_dest
        ()
    in
    if outcome.Serve.Client.exit_code <> 0 then exit outcome.Serve.Client.exit_code
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Tokenize through a running daemon (same output as $(b,tokenize))")
    Term.(
      const run $ socket_arg $ grammar_spec $ file $ ids $ stats_dest_arg
      $ stats_format_arg)

(* ---- convert ---- *)

let convert_cmd =
  let app_arg =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [
                  ("log-to-tsv", `Log_to_tsv);
                  ("json-minify", `Json_minify);
                  ("json-to-csv", `Json_to_csv);
                  ("json-to-sql", `Json_to_sql);
                  ("csv-to-json", `Csv_to_json);
                  ("csv-schema", `Csv_schema);
                  ("sql-load", `Sql_load);
                ]))
          None
      & info [] ~docv:"APP" ~doc:"Application pipeline to run.")
  in
  let file =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"FILE" ~doc:"Input file (default stdin).")
  in
  let log_format =
    Arg.(value & opt string "linux" & info [ "format" ] ~doc:"Log format for log-to-tsv.")
  in
  let run app file log_format stats_dest stats_format =
    let input = read_input file in
    let stats = Option.map (fun _ -> Run_stats.create ()) stats_dest in
    (* rule names for the stats export come from the grammar the pipeline
       actually tokenized with *)
    let stats_grammar = ref None in
    let tokenize g =
      stats_grammar := Some g;
      let p = Tokenizer_backend.prepare Tokenizer_backend.Streamtok g in
      let ts = Token_stream.create () in
      let filled, dt = Timer.time_it (fun () -> Token_stream.fill p input ts) in
      if not filled then begin
        (match stats with
        | Some st -> Run_stats.record_failure st
        | None -> ());
        (* the backend reports only success; re-run the engine for a
           positioned diagnostic *)
        (match Engine.compile (Tokenizer_backend.dfa p) with
        | Ok e -> (
            match
              Engine.run_string e input ~emit:(fun ~pos:_ ~len:_ ~rule:_ -> ())
            with
            | Engine.Failed { offset; pending } ->
                report_failure input offset pending
            | Engine.Finished ->
                prerr_endline "error: input does not tokenize under the grammar")
        | Error _ ->
            prerr_endline "error: input does not tokenize under the grammar");
        exit 1
      end;
      (match stats with
      | Some st ->
          Run_stats.add_chunk st (String.length input);
          Run_stats.add_run_seconds st dt;
          for i = 0 to Token_stream.length ts - 1 do
            Run_stats.record_token st ~rule:(Token_stream.rule ts i)
              ~len:(Token_stream.len ts i)
          done
      | None -> ());
      ts
    in
    let out = Buffer.create (String.length input) in
    (match app with
    | `Log_to_tsv ->
        let g =
          match Registry.find log_format with
          | Some g -> g
          | None ->
              Printf.eprintf "unknown log format %s\n" log_format;
              exit 2
        in
        let ts = tokenize g in
        ignore (Log_to_tsv.process (Log_to_tsv.prepare g) input ts out)
    | `Json_minify ->
        let ts = tokenize Formats.json in
        ignore (Json_apps.minify (Json_apps.prepare ()) input ts out)
    | `Json_to_csv ->
        let ts = tokenize Formats.json in
        ignore (Json_apps.to_csv (Json_apps.prepare ()) input ts out)
    | `Json_to_sql ->
        let ts = tokenize Formats.json in
        ignore (Json_apps.to_sql (Json_apps.prepare ()) ~table:"data" input ts out)
    | `Csv_to_json ->
        let ts = tokenize Formats.csv in
        ignore (Csv_apps.to_json (Csv_apps.prepare ()) input ts out)
    | `Csv_schema ->
        let ts = tokenize Formats.csv in
        let schema = Csv_apps.infer_schema (Csv_apps.prepare ()) input ts in
        Array.iter
          (fun (name, ty) ->
            Buffer.add_string out
              (Printf.sprintf "%-20s %s\n" name (Csv_apps.ty_name ty)))
          schema
    | `Sql_load ->
        let ts = tokenize Languages.sql_insert in
        let stats = Sql_apps.load (Sql_apps.prepare ()) input ts in
        Buffer.add_string out
          (Printf.sprintf "statements: %d\nrows: %d\n" stats.Sql_apps.statements
             stats.Sql_apps.rows);
        List.iter
          (fun (t, n) -> Buffer.add_string out (Printf.sprintf "  %-16s %d\n" t n))
          stats.Sql_apps.tables);
    print_string (Buffer.contents out);
    match (stats, stats_dest) with
    | Some st, Some dest ->
        let rule_name =
          match !stats_grammar with
          | Some g -> Grammar.rule_name g
          | None -> string_of_int
        in
        write_stats ~dest ~format:stats_format ~rule_name st
    | _ -> ()
  in
  Cmd.v (Cmd.info "convert" ~doc:"Run an RQ5 application pipeline")
    Term.(
      const run $ app_arg $ file $ log_format $ stats_dest_arg
      $ stats_format_arg)

(* ---- trace ---- *)

(* Forward reference to the whole command group: `trace record` re-enters
   the CLI to run the wrapped command with tracing enabled. Set in main
   before any eval, so Option.get cannot fail at dispatch time. *)
let main_cmd : unit Cmd.t option ref = ref None

let read_trace_file path =
  match open_in_bin path with
  | ic ->
      let s = read_all ic in
      close_in ic;
      s
  | exception Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1

let parse_trace data =
  if Trace.Bin.is_binary data then Trace.Bin.of_string data
  else Trace.Chrome.of_string data

let write_trace_file ~out ~heat evs =
  let data =
    if Filename.check_suffix out ".bin" then Trace.Bin.to_string ~heat evs
    else Trace.Chrome.to_string ~heat evs
  in
  (match open_out_bin out with
  | oc ->
      output_string oc data;
      close_out oc
  | exception Sys_error msg ->
      Printf.eprintf "error: cannot write trace: %s\n" msg;
      exit 1);
  data

let top_arg =
  Arg.(
    value
    & opt int 10
    & info [ "top" ] ~docv:"N" ~doc:"Rows per state-heat table.")

let trace_record_cmd =
  let out_arg =
    Arg.(
      value
      & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Output file. A $(b,.bin) extension selects the compact binary \
             capture; anything else writes Chrome trace-event JSON \
             (Perfetto-loadable).")
  in
  let heat_arg =
    Arg.(
      value & flag
      & info [ "heat" ]
          ~doc:
            "Also collect DFA state heat: the wrapped command runs its \
             instrumented engine with per-state visit/skip counters and \
             attaches the top-state tables to the trace.")
  in
  let capacity_arg =
    Arg.(
      value
      & opt int 262144
      & info [ "capacity" ] ~docv:"EVENTS"
          ~doc:
            "Per-domain ring capacity in events; when it overflows the \
             oldest events are dropped (and counted).")
  in
  let rest_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"CMD"
          ~doc:
            "The streamtok command to trace, after $(b,--) — e.g. \
             $(b,trace record -- tokenize json input.json).")
  in
  let run out heat capacity rest =
    if rest = [] then begin
      prerr_endline
        "error: nothing to record; usage: streamtok trace record [-o FILE] \
         [--heat] -- <command> ...";
      exit 2
    end;
    Trace.configure ~capacity_events:capacity;
    Trace.heat_requested := heat;
    Trace.Heat.clear_published ();
    Trace.reset ();
    Trace.set_enabled true;
    (* The wrapped command may exit directly (e.g. tokenize on lexical
       failure); dump from at_exit so the recording survives any exit
       path, and make it idempotent for the normal return. *)
    let dumped = ref false in
    let dump () =
      if not !dumped then begin
        dumped := true;
        Trace.set_enabled false;
        let evs = Trace.events () in
        let heat_tables = Trace.Heat.published () in
        ignore (write_trace_file ~out ~heat:heat_tables evs);
        Printf.eprintf "trace: %d events (%d dropped), %d heat table(s) -> %s\n%!"
          (List.length evs) (Trace.dropped ())
          (List.length heat_tables) out
      end
    in
    at_exit dump;
    let argv = Array.of_list ("streamtok" :: rest) in
    let code = Cmd.eval ~argv (Option.get !main_cmd) in
    dump ();
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Run a streamtok command with tracing enabled and write the \
          recording")
    Term.(const run $ out_arg $ heat_arg $ capacity_arg $ rest_arg)

let trace_convert_cmd =
  let in_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"IN" ~doc:"Recording to convert (binary or JSON).")
  in
  let out_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUT"
          ~doc:"Destination; format chosen by extension ($(b,.bin) = binary).")
  in
  let run in_file out_file =
    match parse_trace (read_trace_file in_file) with
    | Error msg ->
        Printf.eprintf "error: %s: %s\n" in_file msg;
        exit 1
    | Ok (evs, heat) ->
        ignore (write_trace_file ~out:out_file ~heat evs);
        Printf.eprintf "trace: %d events -> %s\n" (List.length evs) out_file
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Convert a recording between binary and Chrome JSON")
    Term.(const run $ in_arg $ out_arg)

let trace_report_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Recording to summarize (binary or JSON).")
  in
  let depth_arg =
    Arg.(
      value
      & opt int 8
      & info [ "depth" ] ~docv:"N" ~doc:"Maximum span-tree depth printed.")
  in
  let run file top depth =
    match parse_trace (read_trace_file file) with
    | Error msg ->
        Printf.eprintf "error: %s: %s\n" file msg;
        exit 1
    | Ok (evs, heat) ->
        print_string (Trace.Report.to_text ~max_depth:depth (Trace.Report.build evs));
        List.iter
          (fun t -> print_string (Trace.Heat.to_text ~top_n:top t))
          heat
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Fold a recording into an aggregated span tree with per-category \
          wall-time attribution, plus any state-heat tables")
    Term.(const run $ file_arg $ top_arg $ depth_arg)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:
         "Record ($(b,trace record -- <cmd>)), convert and report execution \
          traces; see README §Tracing & profiling")
    [ trace_record_cmd; trace_convert_cmd; trace_report_cmd ]

let () =
  let doc = "StreamTok: static analysis for efficient streaming tokenization" in
  let info = Cmd.info "streamtok" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        list_cmd; analyze_cmd; stats_cmd; tokenize_cmd; bpe_cmd; compile_cmd;
        validate_cmd; gen_cmd; fuzz_cmd; serve_cmd; client_cmd;
        convert_cmd; trace_cmd;
      ]
  in
  main_cmd := Some group;
  exit (Cmd.eval group)
